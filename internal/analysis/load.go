package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Config tells the driver what to load and how to map import paths to
// directories.
type Config struct {
	// Dir is the root directory: a module root (the directory holding
	// go.mod) when ModulePath is set, or a GOPATH-src-style root where
	// import path "a/b" lives in Dir/a/b (the analysistest fixture
	// layout) when ModulePath is empty.
	Dir string
	// ModulePath is the module's import-path prefix ("failtrans").
	ModulePath string
	// Patterns selects packages: "./..." for every package under Dir, or
	// explicit import paths.
	Patterns []string
	// Parallel caps how many packages parse and type-check concurrently;
	// 0 means GOMAXPROCS. 1 reproduces the old fully-serial loader (the
	// CI timing guard compares the two).
	Parallel int
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader loads and type-checks packages from source, in parallel. Local
// packages (as defined by Config) are resolved under Dir; everything else
// falls back to the standard library's source importer, so the whole run
// works with no compiled export data and no network.
//
// Loading runs in three phases. Phase 1 discovers and parses every local
// package reachable from the patterns — a concurrent BFS over syntactic
// import clauses (token.FileSet is safe for concurrent use). Phase 2
// topologically sorts the local dependency graph, which also rejects
// import cycles up front so the scheduler cannot starve. Phase 3
// type-checks packages concurrently, each becoming ready the moment its
// local dependencies are done — go/types checks distinct packages in
// parallel safely as long as shared dependencies are complete, which the
// scheduling guarantees. The one serial chokepoint left is the standard
// library's source importer, which is not thread-safe and sits behind a
// mutex; each stdlib package still parses only once per run.
type loader struct {
	cfg  Config
	fset *token.FileSet

	stdMu sync.Mutex
	std   types.Importer

	mu   sync.Mutex
	pkgs map[string]*Package
}

func newLoader(cfg Config) *loader {
	fset := token.NewFileSet()
	return &loader{
		cfg:  cfg,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*Package),
	}
}

func (l *loader) parallelism() int {
	if l.cfg.Parallel > 0 {
		return l.cfg.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// dirFor maps an import path to a local directory, or ok=false when the
// path is not local (standard library).
func (l *loader) dirFor(path string) (string, bool) {
	if l.cfg.ModulePath != "" {
		if path == l.cfg.ModulePath {
			return l.cfg.Dir, true
		}
		if rel, ok := strings.CutPrefix(path, l.cfg.ModulePath+"/"); ok {
			return filepath.Join(l.cfg.Dir, filepath.FromSlash(rel)), true
		}
		return "", false
	}
	// GOPATH-style fixture root: local iff the directory exists.
	dir := filepath.Join(l.cfg.Dir, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, true
	}
	return "", false
}

// Import implements types.Importer for the type checker's import clauses.
// Local packages must already be complete — phase 3 schedules dependencies
// first — and stdlib imports serialize through the source importer's
// mutex.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirFor(path); ok {
		l.mu.Lock()
		pkg := l.pkgs[path]
		l.mu.Unlock()
		if pkg == nil {
			return nil, fmt.Errorf("internal: local package %q imported before it was type-checked", path)
		}
		return pkg.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// sourceFiles lists the package's non-test Go files in sorted order.
func sourceFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// parsedPkg is the phase-1 product: a package's syntax and its local
// dependencies, before type checking.
type parsedPkg struct {
	path  string
	dir   string
	files []*ast.File
	deps  []string // local imports, sorted and deduplicated
}

// parsePkg parses one package directory and extracts its local imports.
func (l *loader) parsePkg(path, dir string) (*parsedPkg, error) {
	names, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go source files in %s", dir)
	}
	pp := &parsedPkg{path: path, dir: dir}
	depSet := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pp.files = append(pp.files, f)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || p == "unsafe" {
				continue
			}
			if _, ok := l.dirFor(p); ok {
				depSet[p] = true
			}
		}
	}
	for p := range depSet {
		pp.deps = append(pp.deps, p)
	}
	sort.Strings(pp.deps)
	return pp, nil
}

// discover runs the concurrent parse BFS from the root packages and
// returns every local package reachable through import clauses. Import
// clauses are syntactic, so the discovered set is complete before any
// type checking starts.
func (l *loader) discover(roots []string) (map[string]*parsedPkg, error) {
	var (
		mu     sync.Mutex
		wg     sync.WaitGroup
		sem    = make(chan struct{}, l.parallelism())
		seen   = make(map[string]bool)
		parsed = make(map[string]*parsedPkg)
		errs   []string
	)
	var visit func(path string)
	visit = func(path string) {
		mu.Lock()
		if seen[path] {
			mu.Unlock()
			return
		}
		seen[path] = true
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			dir, ok := l.dirFor(path)
			if !ok {
				mu.Lock()
				errs = append(errs, fmt.Sprintf("package %q is outside the analysis root", path))
				mu.Unlock()
				return
			}
			pp, err := l.parsePkg(path, dir)
			if err != nil {
				mu.Lock()
				errs = append(errs, err.Error())
				mu.Unlock()
				return
			}
			mu.Lock()
			parsed[path] = pp
			mu.Unlock()
			for _, dep := range pp.deps {
				visit(dep)
			}
		}()
	}
	for _, r := range roots {
		visit(r)
	}
	wg.Wait()
	if len(errs) > 0 {
		sort.Strings(errs) // deterministic despite concurrent discovery
		return nil, fmt.Errorf("%s", errs[0])
	}
	return parsed, nil
}

// toposort orders the parsed packages dependencies-first, deterministically
// (DFS over sorted paths and sorted deps), rejecting import cycles.
func toposort(parsed map[string]*parsedPkg) ([]*parsedPkg, error) {
	paths := make([]string, 0, len(parsed))
	for p := range parsed {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[string]int, len(parsed))
	order := make([]*parsedPkg, 0, len(parsed))
	var visit func(p string) error
	visit = func(p string) error {
		switch state[p] {
		case visiting:
			return fmt.Errorf("import cycle through %q", p)
		case done:
			return nil
		}
		state[p] = visiting
		for _, d := range parsed[p].deps {
			if parsed[d] == nil {
				continue // parse failed elsewhere; reported already
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[p] = done
		order = append(order, parsed[p])
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// check type-checks one parsed package whose local dependencies are
// complete and publishes it for importers.
func (l *loader) check(pp *parsedPkg) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pp.path, l.fset, pp.files, info)
	if err != nil {
		return fmt.Errorf("type-checking %s: %w", pp.path, err)
	}
	l.mu.Lock()
	l.pkgs[pp.path] = &Package{Path: pp.path, Dir: pp.dir, Files: pp.files, Types: tpkg, Info: info}
	l.mu.Unlock()
	return nil
}

// checkAll type-checks the topologically-sorted packages with bounded
// parallelism: a package becomes ready the moment its last local
// dependency completes, so independent subtrees overlap while the stdlib
// importer's mutex serializes only what it must.
func (l *loader) checkAll(order []*parsedPkg) error {
	indeg := make(map[string]int, len(order))
	dependents := make(map[string][]*parsedPkg)
	inSet := make(map[string]*parsedPkg, len(order))
	for _, pp := range order {
		inSet[pp.path] = pp
	}
	for _, pp := range order {
		n := 0
		for _, d := range pp.deps {
			if inSet[d] != nil {
				n++
				dependents[d] = append(dependents[d], pp)
			}
		}
		indeg[pp.path] = n
	}
	ready := make(chan *parsedPkg, len(order))
	var (
		mu        sync.Mutex
		firstErr  error
		remaining = len(order)
	)
	if remaining == 0 {
		return nil
	}
	for _, pp := range order {
		if indeg[pp.path] == 0 {
			ready <- pp
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < l.parallelism(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pp := range ready {
				mu.Lock()
				failed := firstErr != nil
				mu.Unlock()
				var err error
				if !failed {
					err = l.check(pp)
				}
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				for _, dep := range dependents[pp.path] {
					indeg[dep.path]--
					if indeg[dep.path] == 0 {
						ready <- dep // buffered to len(order): never blocks
					}
				}
				remaining--
				if remaining == 0 {
					close(ready)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// expand resolves the Config patterns into import paths.
func (l *loader) expand() ([]string, error) {
	var paths []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range l.cfg.Patterns {
		if pat != "./..." {
			add(pat)
			continue
		}
		err := filepath.WalkDir(l.cfg.Dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != l.cfg.Dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			names, err := sourceFiles(p)
			if err != nil || len(names) == 0 {
				return nil
			}
			rel, err := filepath.Rel(l.cfg.Dir, p)
			if err != nil {
				return err
			}
			switch {
			case rel == "." && l.cfg.ModulePath != "":
				add(l.cfg.ModulePath)
			case rel == ".":
				// A GOPATH-style root itself is not a package.
			case l.cfg.ModulePath != "":
				add(l.cfg.ModulePath + "/" + filepath.ToSlash(rel))
			default:
				add(filepath.ToSlash(rel))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return paths, nil
}

// loadAll loads every package the patterns select (plus their local
// transitive dependencies) and returns them in deterministic topological
// order, dependencies first.
func (l *loader) loadAll() ([]*Package, error) {
	roots, err := l.expand()
	if err != nil {
		return nil, err
	}
	parsed, err := l.discover(roots)
	if err != nil {
		return nil, err
	}
	order, err := toposort(parsed)
	if err != nil {
		return nil, err
	}
	if err := l.checkAll(order); err != nil {
		return nil, err
	}
	out := make([]*Package, len(order))
	for i, pp := range order {
		out[i] = l.pkgs[pp.path]
	}
	return out, nil
}
