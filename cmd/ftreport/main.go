// Command ftreport turns campaign ledgers (see internal/obs/ledger) into
// forensic artifacts:
//
//   - a deterministic markdown report that reproduces the paper's Table 1
//     and Table 2 conflict counts from the ledger alone, plus injection-point
//     outcome heatmaps, conflict attribution by commit index, cross-run
//     histograms, and the mined dangerous-path machines with their
//     cross-check verdicts;
//   - a Perfetto/Chrome-trace campaign overview (one span per run over
//     deterministic virtual worker tracks, colored by outcome);
//   - a Graphviz rendering of one mined machine's dangerous-path coloring;
//   - a commit-veto policy file (.ftv) serializing every mined machine's
//     commit-unsafe states, loadable by ftbench/ftsim -veto.
//
// Every output is a pure function of the ledger bytes, which are themselves
// invariant across worker counts and snapshot modes — so two campaigns that
// ran differently but computed the same runs produce byte-identical
// reports.
//
// Usage:
//
//	ftreport -ledger campaign.ftl [-ledger more.ftl ...]
//	         [-md report.md] [-trace trace.json -workers 8]
//	         [-dot machine.dot [-key table1/nvi/two-phase]]
//	         [-veto policy.ftv]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"failtrans/internal/obs/ledger"
	"failtrans/internal/statemachine"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var ledgers multiFlag
	flag.Var(&ledgers, "ledger", "campaign ledger file (repeatable; concatenated in flag order)")
	mdPath := flag.String("md", "", "write the markdown report to this file (default: stdout)")
	tracePath := flag.String("trace", "", "write the Perfetto campaign trace JSON to this file")
	workers := flag.Int("workers", 8, "virtual worker tracks for -trace")
	dotPath := flag.String("dot", "", "write a mined machine's Graphviz coloring to this file")
	key := flag.String("key", "", "mined machine to render with -dot (study/app/protocol; default: first mined)")
	vetoPath := flag.String("veto", "", "write the mined commit-veto policies (.ftv, for ftbench -veto) to this file")
	flag.Parse()

	// Validate the flag set before reading anything: a misspelled flag
	// combination should fail instantly, not after parsing gigabytes.
	if len(ledgers) == 0 {
		fmt.Fprintln(os.Stderr, "ftreport: at least one -ledger file is required")
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ftreport: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}
	if *workers < 1 {
		fmt.Fprintln(os.Stderr, "ftreport: -workers must be >= 1")
		os.Exit(2)
	}
	if *key != "" && *dotPath == "" {
		fmt.Fprintln(os.Stderr, "ftreport: -key selects the -dot machine; it needs -dot")
		os.Exit(2)
	}

	recs, err := ledger.ReadFiles(func(path string) (io.ReadCloser, error) {
		return os.Open(path)
	}, ledgers)
	if err != nil {
		// A torn final record (crash mid-append) leaves a clean prefix;
		// every other read error is fatal.
		if !errors.Is(err, ledger.ErrTruncated) {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "ftreport: warning: %v — analyzing the %d complete records before the tear\n", err, len(recs))
	}
	rp := ledger.Analyze(recs)

	out := io.Writer(os.Stdout)
	var mdFile *os.File
	if *mdPath != "" {
		mdFile, err = os.Create(*mdPath)
		if err != nil {
			fail(err)
		}
		out = mdFile
	}
	if err := rp.WriteMarkdown(out); err != nil {
		fail(err)
	}
	if mdFile != nil {
		if err := mdFile.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *mdPath)
	}

	if *tracePath != "" {
		writeTo(*tracePath, func(w io.Writer) error {
			return rp.WriteCampaignTrace(w, *workers)
		})
	}
	if *dotPath != "" {
		k := *key
		if k == "" {
			keys := rp.Miner.Keys()
			if len(keys) == 0 {
				fail(fmt.Errorf("no machines mined from %d records; nothing for -dot", len(recs)))
			}
			k = keys[0]
		}
		writeTo(*dotPath, func(w io.Writer) error {
			return rp.WriteMachineDot(w, k)
		})
	}
	if *vetoPath != "" {
		ps := rp.Miner.VetoPolicies()
		if len(ps) == 0 {
			fail(fmt.Errorf("no machines mined from %d records; nothing for -veto", len(recs)))
		}
		writeTo(*vetoPath, func(w io.Writer) error {
			return statemachine.WritePolicies(w, ps)
		})
	}
}

// writeTo writes one artifact file, failing the command on any error.
func writeTo(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := write(f); err != nil {
		f.Close() //failtrans:errok best-effort cleanup; the write error being reported is the primary failure
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ftreport:", err)
	os.Exit(1)
}
