package sim

import (
	"fmt"
	"testing"
	"time"
)

// rngCounter emits outputs derived from the process rng — the one piece of
// Proc state a fork cannot copy directly (rand.Rand hides its state) and
// must instead reseed and fast-forward.
type rngCounter struct {
	counter
}

func (r *rngCounter) Fork() (Program, error) {
	nr := &rngCounter{counter: r.counter}
	return nr, nil
}

func (r *rngCounter) Step(ctx *Ctx) Status {
	if r.Done >= r.N {
		return Done
	}
	ctx.Compute(time.Millisecond)
	ctx.Output(fmt.Sprintf("tick %d rand %d", r.Done, ctx.Rand()%1000))
	r.Done++
	return Ready
}

// runToStep inits the world, then steps until its step count reaches n or
// it finishes. (Forking an uninitialized world is not meaningful: the
// fork's Run would re-run Init mid-stream.)
func runToStep(t *testing.T, w *World, n int) {
	t.Helper()
	if err := w.Init(); err != nil {
		t.Fatal(err)
	}
	for w.StepCount() < n {
		more, err := w.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			return
		}
	}
}

// finish runs the world to completion.
func finish(t *testing.T, w *World) {
	t.Helper()
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func outputsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestForkContinuationIdentical is the fork engine's core promise: a world
// forked mid-run and resumed produces byte-for-byte the outputs of the
// uninterrupted run, including rng draws past the fork point.
func TestForkContinuationIdentical(t *testing.T) {
	ref := NewWorld(42, &rngCounter{counter{N: 20}})
	finish(t, ref)
	want := ref.Outputs[0]

	w := NewWorld(42, &rngCounter{counter{N: 20}})
	runToStep(t, w, 10)
	fw, err := w.Fork()
	if err != nil {
		t.Fatal(err)
	}
	finish(t, fw)
	if !outputsEqual(fw.Outputs[0], want) {
		t.Errorf("forked continuation diverged:\n got %v\nwant %v", fw.Outputs[0], want)
	}
	if fw.Clock != ref.Clock {
		t.Errorf("forked clock = %v, want %v", fw.Clock, ref.Clock)
	}
	if fw.StepCount() != ref.StepCount() {
		t.Errorf("forked steps = %d, want %d", fw.StepCount(), ref.StepCount())
	}
}

// TestForkIsolation: stepping the original never changes the fork and vice
// versa, and one quiescent world can serve multiple forks that each run to
// the same completion.
func TestForkIsolation(t *testing.T) {
	ref := NewWorld(7, &rngCounter{counter{N: 16}})
	finish(t, ref)
	want := ref.Outputs[0]

	w := NewWorld(7, &rngCounter{counter{N: 16}})
	runToStep(t, w, 8)
	f1, err := w.Fork()
	if err != nil {
		t.Fatal(err)
	}
	// Run the first fork to completion BEFORE forking again: if forks
	// shared mutable state with the template, the second fork would see it.
	finish(t, f1)
	f2, err := w.Fork()
	if err != nil {
		t.Fatal(err)
	}
	finish(t, f2)
	finish(t, w)
	for name, got := range map[string][]string{
		"fork1": f1.Outputs[0], "fork2": f2.Outputs[0], "original": w.Outputs[0],
	} {
		if !outputsEqual(got, want) {
			t.Errorf("%s diverged:\n got %v\nwant %v", name, got, want)
		}
	}
}

// TestForkUnforkableProgram: a program without a Fork method is a clear
// error, not a shallow copy.
func TestForkUnforkableProgram(t *testing.T) {
	w := NewWorld(1, &counter{N: 3})
	if _, err := w.Fork(); err == nil {
		t.Error("forking a non-Forker program must error")
	}
}

// TestForkOutputsCopyOnWrite: the fork shares the committed output prefix
// with the template, but appends on either side must not bleed across.
func TestForkOutputsCopyOnWrite(t *testing.T) {
	w := NewWorld(3, &rngCounter{counter{N: 12}})
	runToStep(t, w, 6)
	prefix := append([]string(nil), w.Outputs[0]...)
	fw, err := w.Fork()
	if err != nil {
		t.Fatal(err)
	}
	finish(t, w) // template appends first...
	finish(t, fw)
	if !outputsEqual(fw.Outputs[0][:len(prefix)], prefix) {
		t.Errorf("fork's committed prefix changed: %v", fw.Outputs[0][:len(prefix)])
	}
	if !outputsEqual(fw.Outputs[0], w.Outputs[0]) {
		t.Errorf("fork and template finished differently:\n got %v\nwant %v",
			fw.Outputs[0], w.Outputs[0])
	}
}
