// Package vista reimplements the mechanism of the Vista transaction library
// (Lowell & Chen, SOSP 1997) that Discount Checking is built on: a process
// maps its state into a segment of reliable memory; updates are trapped at
// page granularity (copy-on-write in the original, explicit Write calls
// here); before-images of updated pages go to a persistent undo log; and a
// commit atomically saves the register file, discards the undo log, and
// re-arms the write traps.
//
// Rolling back a process is applying the undo log in reverse; recovering
// after a crash is the same operation, because the undo log itself lives in
// reliable memory.
//
// The commit path is engineered to do work proportional to the *dirty*
// bytes with zero steady-state heap allocations: the dirty set is a
// reusable bitset cleared in place, undo-record page buffers are pooled
// across commit cycles, page comparison is word-wise, and a per-page hash
// cache (maintained across commits) lets SetContents reject changed pages
// after a single pass over the incoming image.
package vista

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"failtrans/internal/obs"
)

// DefaultPageSize matches the i386 page size the original used.
const DefaultPageSize = 4096

// Stats reports what a commit had to write.
type Stats struct {
	// Pages is the number of distinct pages dirtied since the previous
	// commit.
	Pages int
	// Bytes is the total payload a commit must persist: the dirtied
	// pages plus the register file.
	Bytes int
}

type undoRec struct {
	page int
	data []byte
}

// pageBitset tracks dirty pages as one bit per page. Bits are cleared in
// place at commit/rollback (walking the undo log, which names exactly the
// set bits) so the steady state allocates nothing.
type pageBitset []uint64

func (b pageBitset) has(p int) bool { return b[p>>6]&(1<<(uint(p)&63)) != 0 }
func (b pageBitset) set(p int)      { b[p>>6] |= 1 << (uint(p) & 63) }
func (b pageBitset) clear(p int)    { b[p>>6] &^= 1 << (uint(p) & 63) }

// Segment is one process's persistent address space plus its undo log.
// The zero value is not usable; call NewSegment.
type Segment struct {
	pageSize int
	mem      []byte
	undo     []undoRec
	dirty    pageBitset
	nDirty   int
	savedReg []byte

	// pageHash caches, per page, the hash of the page's current contents
	// whenever the matching hashValid bit is set. SetContents maintains
	// it so a changed incoming page is detected from the hash alone —
	// without re-reading the segment's committed bytes. Write-path
	// updates (whose contents SetContents never sees) just invalidate.
	pageHash  []uint64
	hashValid pageBitset

	// bufPool recycles undo-record page buffers across commit cycles.
	bufPool [][]byte

	// CommitCount and LoggedBytes accumulate usage statistics.
	CommitCount int
	LoggedBytes int64

	// Metrics, if non-nil, receives the segment's page-diff and undo-log
	// counters (plain increments: the commit hot path stays at zero
	// allocations with metrics enabled). Coordinated commits diff
	// different segments in parallel, so each segment must be wired to its
	// own slot.
	Metrics *obs.VistaMetrics
}

// NewSegment returns a segment of the given initial size. pageSize <= 0
// selects DefaultPageSize.
func NewSegment(size, pageSize int) *Segment {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	s := &Segment{
		pageSize: pageSize,
		mem:      make([]byte, size),
	}
	s.sizeTracking()
	return s
}

// PageSize returns the trap granularity.
func (s *Segment) PageSize() int { return s.pageSize }

// Size returns the current segment size in bytes.
func (s *Segment) Size() int { return len(s.mem) }

// pages returns the current page count.
func (s *Segment) pages() int { return (len(s.mem) + s.pageSize - 1) / s.pageSize }

// sizeTracking (re)sizes the dirty/hash structures to the segment size,
// preserving existing entries.
func (s *Segment) sizeTracking() {
	np := s.pages()
	words := (np + 63) / 64
	for len(s.dirty) < words {
		s.dirty = append(s.dirty, 0)
	}
	for len(s.hashValid) < words {
		s.hashValid = append(s.hashValid, 0)
	}
	for len(s.pageHash) < np {
		s.pageHash = append(s.pageHash, 0)
	}
}

// grow extends the segment to at least n bytes. New memory is zeroed and
// considered committed (like fresh pages from the OS).
func (s *Segment) grow(n int) {
	if n <= len(s.mem) {
		return
	}
	if n <= cap(s.mem) {
		// The previous extent beyond len is kept zeroed (shrinking
		// SetContents zeroes tails; fresh capacity is zero already), so
		// re-extending within capacity needs no clearing or copying.
		s.mem = s.mem[:n]
	} else {
		//failtrans:alloc segment growth is O(log size) over a process lifetime; the steady-state commit cycle never grows
		bigger := make([]byte, n)
		copy(bigger, s.mem)
		s.mem = bigger
	}
	s.sizeTracking()
}

// pageBuf returns an n-byte buffer for an undo record, recycling pooled
// buffers from earlier commit cycles when possible.
func (s *Segment) pageBuf(n int) []byte {
	if l := len(s.bufPool); l > 0 {
		b := s.bufPool[l-1]
		s.bufPool = s.bufPool[:l-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	//failtrans:alloc pool miss happens only until the pool reaches the working set; AllocsPerRun pins the warmed cycle at zero
	return make([]byte, n, s.pageSize)
}

// releaseUndo returns every undo record's page buffer to the pool and
// truncates the log, clearing the records' dirty bits in place.
func (s *Segment) releaseUndo() {
	for i := range s.undo {
		s.dirty.clear(s.undo[i].page)
		s.bufPool = append(s.bufPool, s.undo[i].data)
		s.undo[i].data = nil
	}
	s.undo = s.undo[:0]
	s.nDirty = 0
}

// touchPage logs the before-image of page p on its first write since the
// last commit.
func (s *Segment) touchPage(p int) {
	if s.dirty.has(p) {
		return
	}
	s.dirty.set(p)
	s.nDirty++
	start := p * s.pageSize
	end := start + s.pageSize
	if end > len(s.mem) {
		end = len(s.mem)
	}
	img := s.pageBuf(end - start)
	copy(img, s.mem[start:end])
	s.undo = append(s.undo, undoRec{page: p, data: img})
	s.LoggedBytes += int64(len(img))
	if m := s.Metrics; m != nil {
		m.PagesDirtied++
		m.UndoBytes += int64(len(img))
	}
}

// Write copies data into the segment at off, growing it as needed and
// logging before-images of every touched page. The hash cache entries of
// the touched pages are invalidated (Write does not know the final page
// contents; SetContents recomputes them on its next pass).
//
//failtrans:hotpath
func (s *Segment) Write(off int, data []byte) error {
	if off < 0 {
		//failtrans:alloc cold error path: a negative offset aborts the write, so the formatting never runs in a committing cycle
		return fmt.Errorf("vista: negative offset %d", off)
	}
	if len(data) == 0 {
		return nil
	}
	s.grow(off + len(data))
	for p := off / s.pageSize; p <= (off+len(data)-1)/s.pageSize; p++ {
		s.touchPage(p)
		s.hashValid.clear(p)
	}
	copy(s.mem[off:], data)
	return nil
}

// Read copies n bytes at off out of the segment.
func (s *Segment) Read(off, n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("vista: negative read length %d", n)
	}
	out := make([]byte, n)
	if err := s.ReadInto(off, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadInto fills dst with len(dst) bytes starting at off, without
// allocating.
func (s *Segment) ReadInto(off int, dst []byte) error {
	if off < 0 || off+len(dst) > len(s.mem) {
		return fmt.Errorf("vista: read [%d,%d) outside segment of %d bytes", off, off+len(dst), len(s.mem))
	}
	copy(dst, s.mem[off:])
	return nil
}

// SetContents replaces the whole segment with data, but touches only the
// pages that actually differ — the analogue of copy-on-write, where clean
// pages never fault. It is the path Discount Checking uses to lay a
// serialized process image into the segment.
//
// Each incoming page is hashed in one pass and compared against the cached
// hash of the resident page, so clean pages are skipped without reading
// the resident bytes at all; only pages without a cached hash yet fall
// back to a word-wise byte comparison.
//
//failtrans:hotpath
func (s *Segment) SetContents(data []byte) {
	s.grow(len(data))
	// Pages beyond len(data) that contain old bytes must be cleared.
	limit := len(s.mem)
	for start := 0; start < limit; start += s.pageSize {
		end := start + s.pageSize
		if end > limit {
			end = limit
		}
		var src []byte
		switch {
		case start >= len(data):
			src = nil
		case end > len(data):
			src = data[start:len(data):len(data)]
		default:
			src = data[start:end]
		}
		p := start / s.pageSize
		h := pageHashOf(src, end-start)
		if s.hashValid.has(p) {
			if s.pageHash[p] == h {
				// Clean: the cached hash of the resident page matches
				// the incoming page's, so the resident bytes are never
				// read at all. A 64-bit collision (~2^-64 per page)
				// would wrongly skip the copy; the commit path accepts
				// that in exchange for halving clean-page work.
				if m := s.Metrics; m != nil {
					m.HashHits++
				}
				continue
			}
			if m := s.Metrics; m != nil {
				m.HashMisses++
			}
		} else if pageEqual(s.mem[start:end], src) {
			// First sighting of a clean page: adopt its hash so the
			// next commit cycle skips the byte comparison path on a
			// mismatch.
			s.pageHash[p] = h
			s.hashValid.set(p)
			continue
		}
		s.touchPage(p)
		n := copy(s.mem[start:end], src)
		for i := start + n; i < end; i++ {
			s.mem[i] = 0
		}
		s.pageHash[p] = h
		s.hashValid.set(p)
	}
}

// pageHashOf hashes the logical contents of one page extent: the bytes of
// src followed by implicit zeros out to extent bytes. Logical word j
// always lands in lane j%4 with its logical (zero-padded) value, so the
// result is a pure function of the extent's contents regardless of where
// len(src) falls. Four independent multiply lanes break the serial
// xor-multiply dependency chain and keep the common clean-page scan
// memory-bound rather than latency-bound.
func pageHashOf(src []byte, extent int) uint64 {
	const mul = 0x9E3779B97F4A7C15
	h0 := uint64(0x243F6A8885A308D3)
	h1 := uint64(0x13198A2E03707344)
	h2 := uint64(0xA4093822299F31D0)
	h3 := uint64(0x082EFA98EC4E6C89)
	n := len(src)
	i := 0
	for ; i+32 <= n; i += 32 {
		h0 = (h0 ^ binary.LittleEndian.Uint64(src[i:])) * mul
		h1 = (h1 ^ binary.LittleEndian.Uint64(src[i+8:])) * mul
		h2 = (h2 ^ binary.LittleEndian.Uint64(src[i+16:])) * mul
		h3 = (h3 ^ binary.LittleEndian.Uint64(src[i+24:])) * mul
	}
	// Tail: the remaining real words (zero-padded) and the implicit zero
	// words out to extent, one word at a time, continuing the round-robin
	// lane assignment the block loop established.
	for lane := (i / 8) & 3; i < extent; i += 8 {
		var w uint64
		switch {
		case i+8 <= n:
			w = binary.LittleEndian.Uint64(src[i:])
		case i < n:
			var tail [8]byte
			copy(tail[:], src[i:])
			w = binary.LittleEndian.Uint64(tail[:])
		}
		switch lane {
		case 0:
			h0 = (h0 ^ w) * mul
		case 1:
			h1 = (h1 ^ w) * mul
		case 2:
			h2 = (h2 ^ w) * mul
		default:
			h3 = (h3 ^ w) * mul
		}
		lane = (lane + 1) & 3
	}
	return ((h0*mul^h1)*mul^h2)*mul ^ h3
}

// pageEqual compares a memory page against src, treating bytes beyond
// len(src) as zero. The common all-but-tail comparison runs word-wise
// through bytes.Equal.
func pageEqual(page, src []byte) bool {
	n := len(src)
	if n > len(page) {
		n = len(page)
	}
	if !bytes.Equal(page[:n], src[:n]) {
		return false
	}
	for _, b := range page[n:] {
		if b != 0 {
			return false
		}
	}
	return true
}

// Contents returns a copy of the full segment.
func (s *Segment) Contents() []byte {
	return s.AppendContents(nil)
}

// AppendContents appends the full segment to buf and returns the extended
// slice — the zero-allocation companion of Contents for callers that reuse
// a buffer across commit cycles.
func (s *Segment) AppendContents(buf []byte) []byte {
	return append(buf, s.mem...)
}

// Fork returns an independent deep copy of the segment, mid-transaction
// state included: memory image, undo log (with copied before-images — the
// original pools and reuses its page buffers), dirty set and hash cache all
// carry over, so a rollback of either copy behaves identically. The buffer
// pool and Metrics sink do not carry over (the fork warms its own pool;
// observability is per-run).
func (s *Segment) Fork() *Segment {
	ns := &Segment{
		pageSize:    s.pageSize,
		mem:         append([]byte(nil), s.mem...),
		undo:        make([]undoRec, len(s.undo)),
		dirty:       append(pageBitset(nil), s.dirty...),
		nDirty:      s.nDirty,
		savedReg:    append([]byte(nil), s.savedReg...),
		pageHash:    append([]uint64(nil), s.pageHash...),
		hashValid:   append(pageBitset(nil), s.hashValid...),
		CommitCount: s.CommitCount,
		LoggedBytes: s.LoggedBytes,
	}
	for i, rec := range s.undo {
		ns.undo[i] = undoRec{page: rec.page, data: append([]byte(nil), rec.data...)}
	}
	return ns
}

// DirtyPages returns how many pages have been touched since the last
// commit.
func (s *Segment) DirtyPages() int { return s.nDirty }

// Commit atomically saves the register file, discards the undo log, and
// re-arms the page traps. It returns what had to be written to stable
// storage. The undo log's page buffers are recycled for future cycles, so
// a steady-state commit allocates nothing.
//
//failtrans:hotpath
func (s *Segment) Commit(registers []byte) Stats {
	st := Stats{Pages: s.nDirty, Bytes: s.nDirty*s.pageSize + len(registers)}
	s.savedReg = append(s.savedReg[:0], registers...)
	s.releaseUndo()
	s.CommitCount++
	if m := s.Metrics; m != nil {
		m.Commits++
	}
	return st
}

// Rollback applies the undo log in reverse, returning the segment to its
// last committed state, and returns the saved register file. After a
// simulated crash this is exactly recovery: the undo log is persistent.
// Restored pages' hash cache entries are invalidated (their contents no
// longer match what SetContents last hashed).
func (s *Segment) Rollback() []byte {
	for i := len(s.undo) - 1; i >= 0; i-- {
		rec := s.undo[i]
		copy(s.mem[rec.page*s.pageSize:], rec.data)
		s.hashValid.clear(rec.page)
	}
	s.releaseUndo()
	if m := s.Metrics; m != nil {
		m.Rollbacks++
	}
	reg := make([]byte, len(s.savedReg))
	copy(reg, s.savedReg)
	return reg
}
