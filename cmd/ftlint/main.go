// Command ftlint runs the failtrans invariant checkers over the module:
//
//	go run ./cmd/ftlint ./...
//
// Five passes (see internal/analysis/<pass> for the full rules):
//
//	detlint        no wall clock (reads or timers), global math/rand,
//	               process identity, or map-ordered output in the
//	               deterministic core
//	hotpathcheck   no allocation sites (including bound method values)
//	               reachable from //failtrans:hotpath commit entry points
//	durability     no discarded errors from Sync/Truncate/Seek/Rename,
//	               write-path Close, or the stable-storage APIs
//	cowcheck       no writes into //failtrans:cowshared COW backing
//	               without a dominating privatization call
//	interceptcheck no externally-visible effects in the recoverable core
//	               that bypass the dc/kernel/sim interception surface
//
// ftlint exits 0 when the tree is clean, 1 when it has findings, 2 on
// usage or load errors. Suppressions (//failtrans:nondet, //failtrans:alloc,
// //failtrans:errok, //failtrans:cowok, //failtrans:uninterceptible)
// require a written reason; a reasonless or misspelled directive is
// itself a finding.
//
// -json writes the findings to stdout as a JSON document (CI archives it
// as an artifact); the human-readable lines then go to stderr. -parallel
// caps package-loading concurrency: 0 means GOMAXPROCS, 1 reproduces the
// old serial loader (the CI timing guard compares the two).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"failtrans/internal/analysis"
	"failtrans/internal/analysis/ftlint"
)

func main() {
	var (
		detpkg   string
		jsonOut  bool
		parallel int
	)
	flag.StringVar(&detpkg, "detpkg", "",
		"comma-separated extra import paths to add to detlint's deterministic core")
	flag.BoolVar(&jsonOut, "json", false,
		"write findings to stdout as JSON (human-readable lines move to stderr)")
	flag.IntVar(&parallel, "parallel", 0,
		"max packages loading concurrently (0 = GOMAXPROCS, 1 = serial)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ftlint [-detpkg pkgs] [-json] [-parallel n] [patterns]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		for _, a := range ftlint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	var extra []string
	if detpkg != "" {
		extra = strings.Split(detpkg, ",")
	}
	res, err := ftlint.RunParallel(".", flag.Args(), parallel, extra...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		os.Exit(2)
	}
	human := os.Stdout
	if jsonOut {
		human = os.Stderr
		if err := res.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ftlint:", err)
			os.Exit(2)
		}
	}
	for _, d := range res.Diags {
		fmt.Fprintln(human, analysis.FormatDiag(res.Fset, d))
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "ftlint: %d finding(s)\n", len(res.Diags))
		os.Exit(1)
	}
}
