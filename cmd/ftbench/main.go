// Command ftbench regenerates the paper's evaluation: Figure 8 (protocol
// performance for nvi, magic, xpilot and TreadMarks under Discount Checking
// on reliable memory and on disk), Table 1 (application faults vs the
// Lose-work invariant), Table 2 (OS faults vs recovery), and the Figure 3
// protocol space.
//
// It also carries the repository's performance regression harness: with
// -bench it runs the commit-path microbenchmarks (Vista page-diff commit,
// full Discount Checking commit, rollback) plus the Figure 8 drivers, and
// with -json it writes the machine-readable BENCH.json checked in at the
// repository root.
//
// Every campaign (fault-injection runs, Figure 8 cells) fans out over
// -parallel workers; results are byte-identical to a serial run for the
// same seed (see internal/campaign), so parallelism is purely a wall-clock
// knob. The fault studies additionally serve injection runs from a
// prefix-snapshot cache (-snapshots, on by default): one template run
// memoizes the clean session and every injection run forks it mid-stream
// instead of re-executing the prefix — also byte-identical either way.
//
// With -ledger, every experiment run additionally appends one forensic
// record to the named campaign-ledger file (see internal/obs/ledger); the
// file's bytes are invariant across -parallel, -snapshots and -cow, and
// cmd/ftreport turns it into the full campaign report.
//
// With -veto, the table1/table2 studies additionally arm each app's
// Discount Checking instance with the matching mined commit-veto policy
// from the named .ftv file (written by ftreport -veto); -experiment veto
// instead runs the self-contained two-phase campaign (phase 1 mines the
// policy, phase 2 re-runs the same seeds under it) and prints the
// clawed-back violation delta.
//
// Usage:
//
// -experiment fleet runs the scheduler scalability sweep: the fleet echo
// workload at -fleet-sizes processes (default 100,1000,10000) under the
// unrecoverable baseline with both schedulers plus every measured protocol
// under the indexed one, printing ns-per-scheduling-decision curves and the
// indexed-vs-scan speedup (see internal/bench/fleet.go). -sched selects the
// World scheduler for every other experiment: "indexed" (default) or the
// legacy O(procs) "scan"; results are byte-identical either way, which CI
// enforces by diffing the two.
//
// Usage:
//
//	ftbench -experiment all|fig8|table1|table2|space|veto|fleet [-app nvi] [-scale 1] [-crashes 50]
//	ftbench -bench [-json BENCH.json] [-scale 1]
//	ftbench ... [-sched indexed|scan] [-fleet-sizes 100,1000,10000]
//	ftbench ... [-parallel N] [-json out.json] [-ledger campaign.ftl] [-veto policy.ftv]
//	ftbench ... [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"failtrans/internal/bench"
	"failtrans/internal/obs"
	"failtrans/internal/obs/ledger"
	"failtrans/internal/sim"
	"failtrans/internal/statemachine"
)

func main() {
	experiment := flag.String("experiment", "all", "fig8 | table1 | table2 | space | veto | fleet | all")
	app := flag.String("app", "", "restrict fig8 to one app (nvi, magic, xpilot, treadmarks) or veto to one app (nvi, postgres)")
	scale := flag.Int("scale", 1, "workload scale factor for fig8 (1 = quick, 10 ≈ paper-length sessions)")
	crashes := flag.Int("crashes", 50, "crashes to collect per fault type in table1/table2 (paper: 50)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "campaign worker count (1 = serial; results are identical either way)")
	snapshots := flag.Bool("snapshots", true, "serve table1/table2 injection runs from a prefix-snapshot cache (results are identical either way)")
	cow := flag.Bool("cow", true, "fork snapshot templates copy-on-write instead of deep-copying (results are identical either way)")
	doBench := flag.Bool("bench", false, "run the commit microbenchmarks + Fig 8 drivers instead of an experiment")
	jsonPath := flag.String("json", "", "also write the results as JSON to this path")
	ledgerPath := flag.String("ledger", "", "append one forensic record per run to this campaign-ledger file (for ftreport)")
	vetoPath := flag.String("veto", "", "arm table1/table2 studies with mined commit-veto policies from this .ftv file (see ftreport -veto)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	sched := flag.String("sched", "indexed", "World scheduler: indexed (readiness heap) or scan (legacy O(procs); differential oracle)")
	fleetSizes := flag.String("fleet-sizes", "", "comma-separated fleet sizes for -experiment fleet (default 100,1000,10000)")
	flag.Parse()

	switch *sched {
	case "indexed":
		sim.DefaultScanSched = false
	case "scan":
		sim.DefaultScanSched = true
	default:
		fmt.Fprintf(os.Stderr, "ftbench: -sched must be indexed or scan, got %q\n", *sched)
		os.Exit(2)
	}

	// Validate -ledger up front: it records experiment runs, so it has
	// nothing to write under -bench, and a bad path should fail before an
	// hours-long campaign rather than after.
	if *ledgerPath != "" && *doBench {
		fmt.Fprintln(os.Stderr, "ftbench: -ledger records experiment runs; it cannot be combined with -bench")
		os.Exit(2)
	}
	// Load -veto before any simulation so a bad policy file fails fast. The
	// veto experiment mines its own phase-1 policy and must start veto-free.
	var vetoPolicies []*statemachine.VetoPolicy
	if *vetoPath != "" {
		if *doBench || *experiment == "veto" {
			fmt.Fprintln(os.Stderr, "ftbench: -veto arms table1/table2 studies; it cannot be combined with -bench or -experiment veto")
			os.Exit(2)
		}
		f, err := os.Open(*vetoPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: -veto: %v\n", err)
			os.Exit(1)
		}
		vetoPolicies, err = statemachine.ReadPolicies(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: -veto: %v\n", err)
			os.Exit(1)
		}
	}
	var lw *ledger.Writer
	var ledgerFlush func()
	if *ledgerPath != "" {
		f, err := os.Create(*ledgerPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: -ledger: %v\n", err)
			os.Exit(1)
		}
		bw := bufio.NewWriterSize(f, 1<<16)
		lw = ledger.NewWriter(bw)
		ledgerFlush = func() {
			if err := lw.Err(); err == nil {
				err = bw.Flush()
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err == nil {
					fmt.Printf("(wrote %s: %d records)\n", *ledgerPath, lw.Records())
					return
				}
				fmt.Fprintf(os.Stderr, "ftbench: -ledger: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "ftbench: -ledger: %v\n", lw.Err())
			}
			os.Exit(1)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "ftbench: -cpuprofile: close: %v\n", err)
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ftbench: -memprofile: %v\n", err)
				return
			}
			runtime.GC() // report the retained live set, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ftbench: -memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "ftbench: -memprofile: close: %v\n", err)
			}
		}()
	}

	if *doBench {
		rep, err := bench.RunBench(*scale, *parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: bench: %v\n", err)
			os.Exit(1)
		}
		rep.Print(os.Stdout)
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ftbench: bench: %v\n", err)
				os.Exit(1)
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close() //failtrans:errok best-effort cleanup; the write error being reported is the primary failure
				fmt.Fprintf(os.Stderr, "ftbench: bench: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "ftbench: bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("\n(wrote %s)\n", *jsonPath)
		}
		return
	}

	// campObs accumulates per-worker campaign counters across every study
	// below; report holds the experiment results for -json. The JSON
	// deliberately excludes wall-clock and worker counters so a serial and
	// a parallel run of the same seed produce byte-identical files.
	campObs := obs.NewCampaignMetrics(*parallel)
	report := map[string]any{}

	run := func(name string, fn func() error) {
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", name, time.Since(start).Seconds())
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }

	if want("fig8") {
		apps := bench.Fig8Apps
		if *app != "" {
			apps = []string{*app}
		}
		var sweeps []*bench.Fig8Result
		for _, a := range apps {
			a := a
			run("fig8/"+a, func() error {
				res, err := bench.Fig8(a, *scale, *parallel, lw)
				if err != nil {
					return err
				}
				res.Print(os.Stdout)
				sweeps = append(sweeps, res)
				return nil
			})
		}
		report["fig8"] = sweeps
	}
	if want("table1") {
		run("table1", func() error {
			res, err := bench.Table1(*crashes, *parallel, *snapshots, *cow, campObs, lw, vetoPolicies)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			report["table1"] = res
			return nil
		})
	}
	if want("table2") {
		run("table2", func() error {
			res, err := bench.Table2(*crashes, *parallel, *snapshots, *cow, campObs, lw, vetoPolicies)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			report["table2"] = res
			return nil
		})
	}
	// "veto" is not part of "all": the two-phase campaign re-runs table1
	// twice per app and exists to measure the mined policy, not the paper.
	if *experiment == "veto" {
		apps := []string{"nvi"}
		if *app != "" {
			apps = []string{*app}
		}
		var outs []*bench.VetoResult
		for _, a := range apps {
			a := a
			run("veto/"+a, func() error {
				res, err := bench.VetoCampaign(a, *crashes, *parallel, *snapshots, *cow, campObs, lw)
				if err != nil {
					return err
				}
				res.Print(os.Stdout)
				outs = append(outs, res)
				return nil
			})
		}
		report["veto"] = outs
	}
	// "fleet" is not part of "all": it is a scalability benchmark, not one
	// of the paper's experiments, and its 10⁴-proc cells dominate wall time.
	if *experiment == "fleet" {
		sizes := []int{100, 1_000, 10_000}
		if *fleetSizes != "" {
			sizes = sizes[:0]
			for _, tok := range strings.Split(*fleetSizes, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(tok))
				if err != nil || n < 2 {
					fmt.Fprintf(os.Stderr, "ftbench: -fleet-sizes: bad size %q\n", tok)
					os.Exit(2)
				}
				sizes = append(sizes, n)
			}
		}
		run("fleet", func() error {
			res, err := bench.FleetCurves(sizes)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			report["fleet"] = res
			return nil
		})
	}
	if want("space") {
		run("space", func() error {
			bench.PrintSpace(os.Stdout)
			return nil
		})
	}

	if campObs.Dispatched+campObs.SerialRuns > 0 {
		campObs.WriteSummary(os.Stderr)
	}
	if ledgerFlush != nil {
		ledgerFlush()
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: -json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: -json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(wrote %s)\n", *jsonPath)
	}
}
