// Package analysis is a self-contained static-analysis framework for the
// failtrans invariant checkers (cmd/ftlint). It mirrors the shape of
// golang.org/x/tools/go/analysis — an Analyzer owns a per-package Run
// function, reports Diagnostics, and exchanges typed facts attached to
// types.Objects — but is built entirely on the standard library
// (go/parser, go/types, and the source importer), because this module is
// deliberately dependency-free: it must build and lint itself offline.
//
// Two deliberate extensions over the x/tools API cover what a plain
// multichecker cannot express here:
//
//   - Facts flow in *both* directions. x/tools propagates facts strictly
//     from dependencies to dependents, but the hot-path annotation lives on
//     high-level entry points (dc, vista) whose callees sit in dependency
//     packages. The driver therefore runs every per-package pass first
//     (each exporting object facts) and then calls the Analyzer's optional
//     Finish hook once with the whole fact table, where whole-program
//     propagation (e.g. call-graph reachability) happens.
//
//   - Suppression directives are first-class. A finding on a line carrying
//     the analyzer's suppression tag (//failtrans:<tag> <reason>), or on
//     the line directly below it, is dropped by the driver — and the driver
//     itself reports any failtrans directive whose reason is missing, so a
//     suppression can never be silent.
package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// SuppressTag is the failtrans directive tag (without the
	// "failtrans:" prefix) that silences this analyzer's findings at a
	// site, e.g. "nondet". Empty means findings cannot be suppressed.
	SuppressTag string
	// Run analyzes one package. It may report diagnostics and export
	// object facts; cross-package work belongs in Finish.
	Run func(*Pass) error
	// Finish, if non-nil, runs once after every package's Run has
	// completed, with access to all facts the analyzer exported. This is
	// where whole-program propagation (call-graph reachability for the
	// hot-path checker) reports its diagnostics.
	Finish func(*Finish)
}

// A Diagnostic is one finding, positioned in the shared FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	driver   *driver
}

// Fset returns the FileSet shared by every package of the run.
func (p *Pass) Fset() *token.FileSet { return p.driver.fset }

// Reportf records a finding at pos. Suppression filtering happens in the
// driver, so analyzers report unconditionally.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.driver.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Suppressed reports whether a finding of this analyzer at pos would be
// silenced by a suppression directive. Analyzers only need it when a
// directive must also stop derived work (e.g. cutting a call-graph edge),
// since the driver already filters reported diagnostics.
func (p *Pass) Suppressed(pos token.Pos) bool {
	return p.driver.suppressed(pos, p.Analyzer.SuppressTag)
}

// ExportObjectFact attaches fact to obj for this analyzer. Objects are
// shared across packages (one FileSet, one importer), so a Finish hook in
// any package sees facts exported by every other.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	p.driver.facts[factKey{p.Analyzer.Name, obj}] = fact
}

// ObjectFact returns the fact this analyzer attached to obj, if any.
func (p *Pass) ObjectFact(obj types.Object) (any, bool) {
	f, ok := p.driver.facts[factKey{p.Analyzer.Name, obj}]
	return f, ok
}

// A Finish gives an analyzer's Finish hook the whole-program view.
type Finish struct {
	Analyzer *Analyzer
	driver   *driver
}

// Fset returns the FileSet shared by every package of the run.
func (f *Finish) Fset() *token.FileSet { return f.driver.fset }

// Reportf records a finding at pos, exactly as Pass.Reportf does.
func (f *Finish) Reportf(pos token.Pos, format string, args ...any) {
	f.driver.report(Diagnostic{Pos: pos, Analyzer: f.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Suppressed mirrors Pass.Suppressed for Finish-phase decisions.
func (f *Finish) Suppressed(pos token.Pos) bool {
	return f.driver.suppressed(pos, f.Analyzer.SuppressTag)
}

// AllObjectFacts returns every (object, fact) pair this analyzer exported,
// sorted by the object's source position so iteration order — and hence
// any derived diagnostic order — is deterministic. (detlint would have
// something to say about ranging over the fact map directly.)
func (f *Finish) AllObjectFacts() []ObjectFact {
	var out []ObjectFact
	for k, v := range f.driver.facts {
		if k.analyzer == f.Analyzer.Name {
			out = append(out, ObjectFact{Object: k.obj, Fact: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object.Pos() < out[j].Object.Pos() })
	return out
}

// ObjectFact is one exported fact with the object it describes.
type ObjectFact struct {
	Object types.Object
	Fact   any
}

type factKey struct {
	analyzer string
	obj      types.Object
}
