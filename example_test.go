package failtrans_test

import (
	"fmt"

	"failtrans"
)

// ExampleCheckSaveWork shows the Save-work invariant catching the paper's
// Figure 1 coin flip: a transient non-deterministic event precedes a
// visible event with no commit in between.
func ExampleCheckSaveWork() {
	tr := failtrans.NewTrace(1)
	tr.MustAppend(failtrans.Event{
		ID: failtrans.EventID{P: 0, I: -1}, Kind: failtrans.Internal,
		ND: failtrans.TransientND, Label: "coin flip",
	})
	tr.MustAppend(failtrans.Event{
		ID: failtrans.EventID{P: 0, I: -1}, Kind: failtrans.Visible, Label: "print",
	})
	for _, v := range failtrans.CheckSaveWork(tr) {
		fmt.Println(v)
	}
	// Output:
	// Save-work-visible: ND event e_0^0 causally precedes visible e_0^1 without an intervening commit
}

// ExampleMachine_DangerousPaths computes where committing would violate the
// Lose-work invariant: a transient non-deterministic fork where one result
// leads deterministically to a crash.
func ExampleMachine_DangerousPaths() {
	m := failtrans.NewMachine(5)
	m.AddEdge(failtrans.MachineEdge{From: 0, To: 1, ND: failtrans.TransientND, Label: "bad luck"})
	m.AddEdge(failtrans.MachineEdge{From: 0, To: 2, ND: failtrans.TransientND, Label: "good luck"})
	m.AddEdge(failtrans.MachineEdge{From: 1, To: 3, Label: "doomed"})
	m.AddEdge(failtrans.MachineEdge{From: 2, To: 4, Label: "completes"})
	m.MarkCrash(3)
	c := m.DangerousPaths()
	fmt.Println("commit at state 0 unsafe:", c.CommitUnsafeAt(0))
	fmt.Println("commit at state 1 unsafe:", c.CommitUnsafeAt(1))
	fmt.Println("commit at state 2 unsafe:", c.CommitUnsafeAt(2))
	// Output:
	// commit at state 0 unsafe: false
	// commit at state 1 unsafe: true
	// commit at state 2 unsafe: false
}

// ExampleEquivalent shows the paper's duplicates-allowed output
// equivalence: recovery may repeat earlier visible events, never contradict
// them.
func ExampleEquivalent() {
	legal := []string{"a", "b", "c"}
	eq, complete := failtrans.Equivalent([]string{"a", "b", "b", "c"}, legal)
	fmt.Println(eq, complete)
	eq, _ = failtrans.Equivalent([]string{"a", "x"}, legal)
	fmt.Println(eq)
	// Output:
	// true true
	// false
}

// ExampleProtocolByName looks up a protocol from the Figure 3 catalog.
func ExampleProtocolByName() {
	p, _ := failtrans.ProtocolByName("CBNDVS-LOG")
	fmt.Println(p.Name, "logs input:", p.LogInput, "logs receives:", p.LogReceives)
	// Output:
	// CBNDVS-LOG logs input: true logs receives: true
}
