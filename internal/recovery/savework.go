// Package recovery implements trace-level checkers for the paper's two
// invariants and for its definition of consistent recovery.
//
// Save-work Theorem: a computation is guaranteed consistent recovery from
// stop failures iff for each executed non-deterministic event e_p^i that
// causally precedes a visible or commit event e, process p executes a commit
// event e_p^j such that e_p^j happens-before (or is atomic with) e and i<j.
//
// Lose-work Theorem: application-generic recovery from propagation failures
// is guaranteed to be possible iff the application executes no commit event
// on a dangerous path.
package recovery

import (
	"fmt"

	"failtrans/internal/event"
)

// SaveWorkViolation records one uncommitted non-deterministic dependence.
type SaveWorkViolation struct {
	// ND is the effectively non-deterministic event whose result was not
	// saved.
	ND event.ID
	// Target is the visible or commit event that causally depends on ND.
	Target event.ID
	// TargetKind distinguishes violations of the visible constraint
	// (Save-work-visible) from orphan-creating ones (Save-work-orphan).
	TargetKind event.Kind
}

// String renders the violation.
func (v SaveWorkViolation) String() string {
	rule := "Save-work-visible"
	if v.TargetKind == event.Commit {
		rule = "Save-work-orphan"
	}
	return fmt.Sprintf("%s: ND event %v causally precedes %s %v without an intervening commit", rule, v.ND, v.TargetKind, v.Target)
}

// CheckSaveWork verifies the Save-work invariant over a complete trace and
// returns every violation found (nil when the invariant holds).
//
// A commit e_p^j covers ND event e_p^i with respect to target e when i<j and
// either e_p^j is e itself (the commit covers its own process's
// non-determinism atomically) or e_p^j happens-before e.
func CheckSaveWork(tr *event.Trace) []SaveWorkViolation {
	hb := event.NewHB(tr)
	// commitsOf[p] lists the local indexes of p's commits, ascending.
	commitsOf := make([][]int, tr.NumProcs)
	for _, e := range tr.Events {
		if e.Kind == event.Commit {
			commitsOf[e.ID.P] = append(commitsOf[e.ID.P], e.ID.I)
		}
	}
	var out []SaveWorkViolation
	for _, target := range tr.Events {
		if target.Kind != event.Visible && target.Kind != event.Commit {
			continue
		}
		for _, nd := range tr.Events {
			if !nd.EffectivelyND() {
				continue
			}
			if nd.ID == target.ID || !hb.CausallyPrecedes(nd.ID, target.ID) {
				continue
			}
			if !covered(hb, commitsOf, nd.ID, target.ID) {
				out = append(out, SaveWorkViolation{ND: nd.ID, Target: target.ID, TargetKind: target.Kind})
			}
		}
	}
	return out
}

// covered reports whether some commit on nd's process, after nd, happens
// before (or is) the target event.
func covered(hb *event.HB, commitsOf [][]int, nd, target event.ID) bool {
	for _, j := range commitsOf[nd.P] {
		if j <= nd.I {
			continue
		}
		c := event.ID{P: nd.P, I: j}
		if c == target || hb.HappensBefore(c, target) {
			return true
		}
	}
	return false
}

// Orphan describes a process that has committed a dependence on another
// process's lost non-deterministic event.
type Orphan struct {
	Process int
	// Commit is the orphaning commit.
	Commit event.ID
	// LostND is the failed process's uncommitted ND event the commit
	// depends on.
	LostND event.ID
}

// FindOrphans determines which processes become orphans in the hypothetical
// run where process `failed` stop-fails after executing its first `executed`
// events. The failed process's uncommitted events before the cut are lost,
// and any other process whose commit (a) exists in the hypothetical run —
// i.e. does not causally depend on post-cut events of the failed process —
// and (b) causally depends on a lost effectively-non-deterministic event, is
// an orphan.
func FindOrphans(tr *event.Trace, failed int, executed int) []Orphan {
	hb := event.NewHB(tr)
	lastCommit := -1
	for _, e := range tr.Events {
		if e.ID.P == failed && e.Kind == event.Commit && e.ID.I < executed {
			lastCommit = e.ID.I
		}
	}
	var lost []event.ID
	for _, e := range tr.Events {
		if e.ID.P == failed && e.ID.I > lastCommit && e.ID.I < executed && e.EffectivelyND() {
			lost = append(lost, e.ID)
		}
	}
	var out []Orphan
	for _, e := range tr.Events {
		if e.Kind != event.Commit || e.ID.P == failed {
			continue
		}
		// A commit that depends on the failed process's post-cut events
		// would never have executed in the hypothetical run. The clock
		// component counts causal-past events of `failed` inclusively,
		// so > executed means a post-cut dependence.
		if c, ok := hb.Clock(e.ID); ok && c[failed] > executed {
			continue
		}
		for _, nd := range lost {
			if hb.CausallyPrecedes(nd, e.ID) {
				out = append(out, Orphan{Process: e.ID.P, Commit: e.ID, LostND: nd})
				break
			}
		}
	}
	return out
}
