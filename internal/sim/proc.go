package sim

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// safeStep runs one Program step, converting a runtime panic — an index out
// of range, a nil dereference — into a crash event, exactly as corrupted
// state crashes a real process. Applications detect faults and fail before
// producing incorrect output (the paper's fail-before-output assumption);
// the panic path models the detection the hardware/runtime provides for
// free.
func (p *Proc) safeStep() (st Status) {
	defer func() {
		if r := recover(); r != nil {
			p.ctx.crashed = true
			p.ctx.crashReason = fmt.Sprintf("runtime panic: %v", r)
			st = Crashed
		}
	}()
	return p.Prog.Step(p.ctx)
}

// CheckpointImage assembles the image Discount Checking must persist for
// this process: the application state plus the session/kernel state the
// library reconstructs during recovery — the input cursor, the message
// sequence counters, and (when an OS is attached) the per-process kernel
// blob.
//
// With essential=true and a Program implementing PartialState, only the
// application's essential state is captured (the §2.6 mitigation); the
// image records which form it holds so RestoreCheckpointImage can dispatch.
func (p *Proc) CheckpointImage(essential bool) ([]byte, error) {
	return p.AppendCheckpointImage(nil, essential)
}

// appendI64 appends v to buf in the image's little-endian wire format.
func appendI64(buf []byte, v int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return append(buf, b[:]...)
}

// AppendCheckpointImage appends the checkpoint image to buf and returns the
// extended slice — the zero-allocation form of CheckpointImage for callers
// (Discount Checking's commit path) that reuse one buffer per process
// across commit cycles.
//
//failtrans:hotpath
func (p *Proc) AppendCheckpointImage(buf []byte, essential bool) ([]byte, error) {
	var app []byte
	var err error
	mode := byte(0)
	if ps, ok := p.Prog.(PartialState); ok && essential {
		mode = 1
		app, err = ps.MarshalEssential()
	} else {
		app, err = p.Prog.MarshalState()
	}
	if err != nil {
		//failtrans:alloc cold error path: a failed marshal aborts the commit, so the formatting never runs in a committing cycle
		return nil, fmt.Errorf("sim: marshal %s state: %w", p.Prog.Name(), err)
	}
	var kern []byte
	if p.World.OS != nil {
		kern = p.World.OS.SaveProcState(p.Index)
	}
	buf = append(buf, mode)
	buf = appendI64(buf, int64(p.InputCursor))
	buf = appendI64(buf, p.SendSeq)
	senders := p.ckptSenders[:0]
	for s := range p.RecvHW {
		senders = append(senders, s)
	}
	sort.Ints(senders)
	p.ckptSenders = senders
	buf = appendI64(buf, int64(len(senders)))
	for _, s := range senders {
		buf = appendI64(buf, int64(s))
		buf = appendI64(buf, p.RecvHW[s])
	}
	buf = appendI64(buf, int64(len(app)))
	buf = append(buf, app...)
	buf = appendI64(buf, int64(len(kern)))
	buf = append(buf, kern...)
	return buf, nil
}

// RestoreCheckpointImage is the inverse of CheckpointImage: it reloads
// application state (full or essential, per the image's mode byte), the
// session counters, and kernel state.
func (p *Proc) RestoreCheckpointImage(img []byte) error {
	if len(img) < 1 {
		return fmt.Errorf("sim: empty checkpoint image")
	}
	mode := img[0]
	img = img[1:]
	pos := 0
	getI64 := func() (int64, error) {
		if pos+8 > len(img) {
			return 0, fmt.Errorf("sim: checkpoint image truncated at byte %d", pos)
		}
		v := int64(binary.LittleEndian.Uint64(img[pos : pos+8]))
		pos += 8
		return v, nil
	}
	cursor, err := getI64()
	if err != nil {
		return err
	}
	sendSeq, err := getI64()
	if err != nil {
		return err
	}
	nhw, err := getI64()
	if err != nil {
		return err
	}
	hw := make(map[int]int64, nhw)
	for i := int64(0); i < nhw; i++ {
		s, err := getI64()
		if err != nil {
			return err
		}
		v, err := getI64()
		if err != nil {
			return err
		}
		hw[int(s)] = v
	}
	appLen, err := getI64()
	if err != nil {
		return err
	}
	if pos+int(appLen) > len(img) {
		return fmt.Errorf("sim: checkpoint image app section overruns")
	}
	app := img[pos : pos+int(appLen)]
	pos += int(appLen)
	kernLen, err := getI64()
	if err != nil {
		return err
	}
	if pos+int(kernLen) > len(img) {
		return fmt.Errorf("sim: checkpoint image kernel section overruns")
	}
	kern := img[pos : pos+int(kernLen)]
	if mode == 1 {
		ps, ok := p.Prog.(PartialState)
		if !ok {
			return fmt.Errorf("sim: essential image for %s, which lacks PartialState", p.Prog.Name())
		}
		if err := ps.UnmarshalEssential(app); err != nil {
			return fmt.Errorf("sim: unmarshal %s essential state: %w", p.Prog.Name(), err)
		}
	} else if err := p.Prog.UnmarshalState(app); err != nil {
		return fmt.Errorf("sim: unmarshal %s state: %w", p.Prog.Name(), err)
	}
	p.InputCursor = int(cursor)
	p.SendSeq = sendSeq
	p.RecvHW = hw
	if p.World.OS != nil {
		p.World.OS.RestoreProcState(p.Index, kern)
	}
	return nil
}
