package faults

// splitmix is a tiny seeded-derivation generator (splitmix64, Steele et
// al.) for deriving per-run injection parameters from an injection seed.
// It replaces per-run rand.New(rand.NewSource(...)) pairs, which allocate
// a full Go 1 generator (~5 KB of source state) for the one or two draws a
// campaign run needs.
type splitmix struct{ state uint64 }

func newSplitmix(seed int64) splitmix { return splitmix{state: uint64(seed)} }

// Next returns the next 64-bit value of the stream.
func (s *splitmix) Next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). The modulo bias is ~n/2^64 — irrelevant
// for deriving injection points; what matters is determinism per seed.
func (s *splitmix) Intn(n int) int { return int(s.Next() % uint64(n)) }

// Float64 returns a value in [0, 1) with 53 bits of precision.
func (s *splitmix) Float64() float64 { return float64(s.Next()>>11) / (1 << 53) }
