package ledger

import (
	"fmt"
	"strconv"

	"failtrans/internal/event"
	"failtrans/internal/statemachine"
)

// This file is the bridge from ledger records back to the paper's
// dangerous-path machinery. Each record describes one executed path
// through commit-count space: some commits, possibly a fault activation,
// possibly more commits, then a terminal (done, wrong output, crash).
// PathEvents re-synthesizes that path as an event sequence that
// statemachine.FromExecution accepts; the Miner merges every record's path
// into one machine per (study, app, protocol) — states keyed by commit
// count and activation — recoloring dangerous paths incrementally as runs
// stream in, and cross-checking the ledger's recorded violation range
// against statemachine.CommitViolations on each path.

// activated reports whether the record's fault actually fired.
func activated(r *Record) bool {
	return r.Outcome != Inert && r.FireAt >= 0
}

// preActCommits counts the record's commits that precede fault activation.
// With commit positions recorded (table1), the count is exact; without
// them (table2), every commit is conservatively placed before the
// activation — the study measures recovery outcomes, not positions.
func preActCommits(r *Record) int {
	if !activated(r) {
		return r.CommitN
	}
	if r.Commits == nil || r.Activation < 0 {
		return r.CommitN
	}
	k := 0
	for _, c := range r.Commits {
		if c < r.Activation {
			k++
		}
	}
	return k
}

// PathEvents synthesizes the record's executed path as an event sequence
// for statemachine.FromExecution: the pre-activation commits, the fault
// activation as a transient-ND event (FromExecution grants it the escape
// edge the Lose-work theorem's conservative analysis requires), the
// post-activation commits, and a crash event when the run crashed.
func PathEvents(r *Record) []event.Event {
	k := preActCommits(r)
	evs := make([]event.Event, 0, r.CommitN+2)
	commit := event.Event{Kind: event.Commit, Label: "commit"}
	for i := 0; i < k; i++ {
		evs = append(evs, commit)
	}
	if activated(r) {
		evs = append(evs, event.Event{Kind: event.Internal, ND: event.TransientND, Label: "fault:" + r.Kind})
		for j := k; j < r.CommitN; j++ {
			evs = append(evs, commit)
		}
	}
	if r.Outcome == Crashed {
		evs = append(evs, event.Event{Kind: event.Crash, Label: "crash"})
	}
	return evs
}

// CommitStateKey names the mined-machine state reached after k
// pre-activation commits ("c<k>"; "c0" is the start state). The same
// naming is used by the runtime veto tracker in internal/faults, so a
// live run and the mined machine agree on where the run currently is.
func CommitStateKey(k int) string { return "c" + strconv.Itoa(k) }

// ActStateKey names the mined-machine state reached after a <kind> fault
// activated at commit count k followed by j further commits
// ("a<k>/<kind>:<j>").
func ActStateKey(k int, kind string, j int) string {
	return "a" + strconv.Itoa(k) + "/" + kind + ":" + strconv.Itoa(j)
}

// edgeKey identifies one mined transition.
type edgeKey struct {
	from, to statemachine.StateID
	label    string
	nd       event.NDClass
}

// Mined is one (study, app, protocol) group's merged machine. States are
// keyed by position in commit-count space — "c<k>" after k pre-activation
// commits, "a<k>/<kind>:<j>" after a <kind> fault activated at commit
// count k followed by j more commits — plus the shared terminals "done",
// "wrong", "crash" and the activation escape target. Keying by commit
// count is what makes machines from different runs merge: two runs that
// commit k times before their faults share the states c0..c<k>, and their
// divergent fates accrue as alternative edges whose traversal counts
// EdgeRuns records. Post-activation states are additionally keyed by fault
// kind: the coloring marks a commit edge dangerous only when every
// continuation through it crashes, so folding different kinds' (or fire
// points') post-fault behavior into one chain would let one survivable
// kind wash out another's always-fatal commits.
type Mined struct {
	Key    string
	m      *statemachine.Machine
	states map[string]statemachine.StateID
	edges  map[edgeKey]statemachine.EventID
	// EdgeRuns counts path traversals per machine edge (parallel to
	// Machine.Edges).
	EdgeRuns []int64
	// Runs counts merged records; Checked and Mismatched count the per-run
	// cross-checks of the ledger's violation range against
	// statemachine.CommitViolations (FirstMismatch keeps the first
	// discrepancy's description).
	Runs          int64
	Checked       int64
	Mismatched    int64
	FirstMismatch string

	dirty bool
	col   *statemachine.Coloring
}

func newMined(key string) *Mined {
	return &Mined{
		Key:    key,
		m:      statemachine.New(0),
		states: make(map[string]statemachine.StateID),
		edges:  make(map[edgeKey]statemachine.EventID),
	}
}

// Machine exposes the merged machine.
func (md *Mined) Machine() *statemachine.Machine { return md.m }

// Coloring returns the dangerous-path coloring of the merged machine,
// recomputed lazily after new paths arrive — the "updated online" half of
// incremental mining: each recoloring is a fixpoint over a machine whose
// size is bounded by the campaign's maximum commit count, not by its run
// count.
func (md *Mined) Coloring() *statemachine.Coloring {
	if md.dirty || md.col == nil {
		md.col = md.m.DangerousPaths()
		md.dirty = false
	}
	return md.col
}

func (md *Mined) state(key string) statemachine.StateID {
	if id, ok := md.states[key]; ok {
		return id
	}
	id := statemachine.StateID(md.m.NumStates)
	md.m.NumStates++
	md.states[key] = id
	return id
}

func (md *Mined) edge(from, to statemachine.StateID, label string, nd event.NDClass) {
	k := edgeKey{from: from, to: to, label: label, nd: nd}
	id, ok := md.edges[k]
	if !ok {
		id = md.m.AddEdge(statemachine.Edge{From: from, To: to, ND: nd, Label: label})
		md.edges[k] = id
		md.EdgeRuns = append(md.EdgeRuns, 0)
	}
	md.EdgeRuns[id]++
	md.dirty = true
}

// add merges one record's path into the machine and cross-checks its
// recorded violation range when commit positions allow it.
func (md *Mined) add(r *Record) {
	md.Runs++
	k := preActCommits(r)
	cur := md.state(CommitStateKey(0))
	for i := 0; i < k; i++ {
		next := md.state(CommitStateKey(i + 1))
		md.edge(cur, next, "commit", event.Deterministic)
		cur = next
	}
	if activated(r) {
		a := md.state(ActStateKey(k, r.Kind, 0))
		md.edge(cur, a, "fault:"+r.Kind, event.TransientND)
		md.edge(cur, md.state("escape"), "escape", event.TransientND)
		cur = a
		for j := k; j < r.CommitN; j++ {
			next := md.state(ActStateKey(k, r.Kind, j-k+1))
			md.edge(cur, next, "commit", event.Deterministic)
			cur = next
		}
	}
	switch r.Outcome {
	case Crashed:
		x := md.state("crash")
		md.m.MarkCrash(x)
		md.edge(cur, x, "crash", event.Deterministic)
	case WrongOutput:
		md.edge(cur, md.state("wrong"), "wrong-output", event.Deterministic)
	default:
		md.edge(cur, md.state("done"), "done", event.Deterministic)
	}
	md.crossCheck(r, k)
}

// crossCheck verifies, for records with exact commit positions, that the
// violation range the emitter derived from the fault timeline matches what
// the paper's own algorithm — FromExecution + CommitViolations over the
// synthesized path — colors. The two computations share no code: the
// emitter compares step positions against the activation/crash interval,
// the algorithm runs the dangerous-paths fixpoint with escape edges.
func (md *Mined) crossCheck(r *Record, k int) {
	if r.Commits == nil || !activated(r) || r.Activation < 0 {
		return
	}
	md.Checked++
	viol := statemachine.CommitViolations(PathEvents(r), r.Outcome == Crashed)
	// Map event indexes back to commit ordinals: the activation event sits
	// between commit k-1 and commit k.
	got := make([]int, 0, len(viol))
	for _, ei := range viol {
		ord := ei
		if ei > k {
			ord = ei - 1
		}
		got = append(got, ord)
	}
	want := make([]int, 0, r.ViolN)
	if r.ViolFirst >= 0 {
		for i := 0; i < r.ViolN; i++ {
			want = append(want, r.ViolFirst+i)
		}
	}
	if !equalInts(got, want) {
		md.Mismatched++
		if md.FirstMismatch == "" {
			md.FirstMismatch = fmt.Sprintf("run %d: ledger says violations %v, dangerous-paths says %v", r.Run, want, got)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Miner merges ledger records into per-(study, app, protocol) machines as
// they stream in.
type Miner struct {
	byKey map[string]*Mined
	order []string
}

// NewMiner returns an empty miner.
func NewMiner() *Miner {
	return &Miner{byKey: make(map[string]*Mined)}
}

// MineKey is the machine-grouping key of a record. Veto-phase runs mine
// into their own "/veto" machine: their commit chains are reshaped by the
// policy itself, and folding them into the baseline machine would corrupt
// the very coloring the policy came from.
func MineKey(r *Record) string {
	k := r.Study + "/" + r.App + "/" + r.Protocol
	if r.VetoActive {
		k += "/veto"
	}
	return k
}

// Add merges one record.
func (mn *Miner) Add(r *Record) {
	key := MineKey(r)
	md, ok := mn.byKey[key]
	if !ok {
		md = newMined(key)
		mn.byKey[key] = md
		mn.order = append(mn.order, key)
	}
	md.add(r)
}

// Keys lists mined groups in first-appearance (ledger) order.
func (mn *Miner) Keys() []string { return mn.order }

// Get returns one group's mined machine, or nil.
func (mn *Miner) Get(key string) *Mined { return mn.byKey[key] }
