package statemachine

import (
	"strings"
	"testing"

	"failtrans/internal/event"
)

// TestWriteDotGolden renders a machine that exercises every styling branch
// — crash-state fill, commit-unsafe fill, start-state pen width, dangerous
// red edges, dashed fixed-ND, dotted transient-ND, and the auto-generated
// label for unlabeled edges — and compares the output byte-for-byte.
// WriteDot output feeds external tooling (dot), so its exact shape is a
// contract; this golden also pins the determinism detlint demands of it.
func TestWriteDotGolden(t *testing.T) {
	m := New(5)
	m.AddEdge(Edge{From: 0, To: 1, Label: "step"})
	m.AddEdge(Edge{From: 1, To: 2, ND: event.FixedND, Label: "ok"})
	m.AddEdge(Edge{From: 1, To: 4, ND: event.FixedND, Label: "fault"})
	m.AddEdge(Edge{From: 2, To: 3, ND: event.TransientND})
	m.MarkCrash(4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	c := m.DangerousPaths()

	// Sanity of the coloring the rendering depends on: the crash event and
	// its fixed-ND sibling's ancestor are dangerous, states 0 and 1 are
	// commit-unsafe, states 2 and 3 are safe.
	if got := c.DangerousEvents(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("DangerousEvents = %v, want [0 2]", got)
	}

	var sb strings.Builder
	if err := c.WriteDot(&sb, "demo"); err != nil {
		t.Fatal(err)
	}
	const want = `digraph "demo" {
  rankdir=LR;
  node [shape=circle, fontsize=10];
  s0 [label="0", style=filled, fillcolor=mistyrose, penwidth=2];
  s1 [label="1", style=filled, fillcolor=mistyrose];
  s2 [label="2"];
  s3 [label="3"];
  s4 [label="4", style=filled, fillcolor=black, fontcolor=white];
  s0 -> s1 [label="step", color=red, fontcolor=red];
  s1 -> s2 [label="ok", style=dashed];
  s1 -> s4 [label="fault", style=dashed, color=red, fontcolor=red];
  s2 -> s3 [label="e3", style=dotted];
}
`
	if got := sb.String(); got != want {
		t.Errorf("WriteDot output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// A second render must be byte-identical: the writer may not depend on
	// map iteration order or any other per-run state.
	var sb2 strings.Builder
	if err := c.WriteDot(&sb2, "demo"); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != sb.String() {
		t.Error("WriteDot is not deterministic across calls")
	}
}
