// Package cowcheck enforces the Freeze/fork aliasing contract of the
// copy-on-write fork engine. A struct field annotated
//
//	//failtrans:cowshared privatizeLines,snapshotUndo — why it aliases
//
// may alias a frozen fork template's backing arrays (vista segment pages,
// kernel node/file maps, dc per-node logs, nvi line buffers). Writing
// through such a field — an index assignment, a copy into it, an append
// reassigned over it, or a mutating method call on it — is only legal on
// paths dominated by one of the named privatization calls, which replace
// the shared backing with a private copy first. PR 6's nvi bug (the
// insert path spliced into template-shared Lines without privatizeLines)
// is exactly the class this pass turns into a finding.
//
// The dominance check is flow-sensitive and intraprocedural, built on
// analysis/dataflow: a privatizer call in the same statement as the store
// counts (m[k] = cloneNode(n)), as does one on every branch ahead of it;
// a call on only one arm of an if does not. Stores inside the privatizers
// themselves are exempt (they implement the copy), as are stores through
// objects the function provably constructed fresh (composite literals,
// new). Privatizer resolution exports object facts on the annotated
// fields, so a store in a dependent package is checked against the
// defining package's privatizers.
//
// //failtrans:cowok <reason> suppresses a finding; the annotation payload
// "none" declares a field with no privatizer, whose every store must carry
// such a written justification (dc's capacity-clamped log views).
package cowcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"failtrans/internal/analysis"
	"failtrans/internal/analysis/dataflow"
)

// Fact is attached to each //failtrans:cowshared field variable.
type Fact struct {
	// Struct and Field name the annotated site for messages.
	Struct, Field string
	// Privatizers are the resolved functions whose call must dominate
	// every store through the field. Empty for "none".
	Privatizers []*types.Func
	// Names is the privatizer list as written.
	Names []string
}

// New returns the cowcheck analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:        "cowcheck",
		Doc:         "stores to //failtrans:cowshared fields must be dominated by their privatizing call",
		SuppressTag: analysis.TagCowok,
		Run:         run,
	}
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, info: pass.Pkg.Info}
	for _, f := range pass.Pkg.Files {
		c.collectAnnotations(f)
	}
	for _, f := range pass.Pkg.Files {
		c.collectMutators(f)
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	info *types.Info
	// mutators are this package's methods that write through their
	// receiver's backing (an index or pointer store rooted at the
	// receiver), so e.hashValid.set(p) counts as a store to hashValid.
	mutators map[*types.Func]bool
}

// fact returns the cowshared fact for a field object, if any — whether
// exported by this package or by a dependency.
func (c *checker) fact(obj types.Object) (*Fact, bool) {
	if obj == nil {
		return nil, false
	}
	f, ok := c.pass.ObjectFact(obj)
	if !ok {
		return nil, false
	}
	cf, ok := f.(*Fact)
	return cf, ok
}

// collectAnnotations resolves every cowshared field annotation of one file
// and exports a Fact per annotated field.
func (c *checker) collectAnnotations(f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			tobj := c.info.Defs[ts.Name]
			for _, field := range st.Fields.List {
				d, ok := analysis.FindDirective(field.Doc, analysis.TagCowshared)
				if !ok {
					d, ok = analysis.FindDirective(field.Comment, analysis.TagCowshared)
				}
				if !ok {
					continue
				}
				fact := c.resolveFact(ts.Name.Name, tobj, field, d)
				for _, name := range field.Names {
					if fv, ok := c.info.Defs[name].(*types.Var); ok {
						ff := *fact
						ff.Field = name.Name
						c.pass.ExportObjectFact(fv, &ff)
					}
				}
				if len(field.Names) == 0 {
					c.pass.Reportf(d.Pos, "cowshared annotation on an embedded field is not supported")
				}
			}
		}
	}
}

// resolveFact parses the directive payload ("priv1,priv2 [prose]" or
// "none") and resolves each privatizer name against the struct's method
// set and the package scope.
func (c *checker) resolveFact(structName string, tobj types.Object, field *ast.Field, d analysis.Directive) *Fact {
	fact := &Fact{Struct: structName}
	list, _, _ := strings.Cut(d.Reason, " ")
	if list == "" || list == "none" || list == "-" {
		return fact
	}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		fact.Names = append(fact.Names, name)
		fn := c.lookupPrivatizer(tobj, name)
		if fn == nil {
			c.pass.Reportf(d.Pos, "cowshared names unknown privatizer %q for field %s.%s (not a method of %s or a package function)",
				name, structName, fieldLabel(field), structName)
			continue
		}
		fact.Privatizers = append(fact.Privatizers, fn)
	}
	return fact
}

func fieldLabel(field *ast.Field) string {
	var names []string
	for _, n := range field.Names {
		names = append(names, n.Name)
	}
	if len(names) == 0 {
		return "(embedded)"
	}
	return strings.Join(names, ",")
}

func (c *checker) lookupPrivatizer(tobj types.Object, name string) *types.Func {
	if tn, ok := tobj.(*types.TypeName); ok {
		recv := tn.Type()
		if _, isPtr := recv.(*types.Pointer); !isPtr {
			recv = types.NewPointer(recv)
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, c.pass.Pkg.Types, name)
		if fn, ok := obj.(*types.Func); ok {
			return fn
		}
	}
	if fn, ok := c.pass.Pkg.Types.Scope().Lookup(name).(*types.Func); ok {
		return fn
	}
	return nil
}

// collectMutators marks this package's methods whose bodies store through
// their receiver's backing.
func (c *checker) collectMutators(f *ast.File) {
	if c.mutators == nil {
		c.mutators = make(map[*types.Func]bool)
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
			continue
		}
		var recvObj types.Object
		if names := fd.Recv.List[0].Names; len(names) == 1 {
			recvObj = c.info.Defs[names[0]]
		}
		if recvObj == nil {
			continue
		}
		fn, ok := c.info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		writes := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if throughObject(c.info, lhs, recvObj) {
						writes = true
					}
				}
			case *ast.IncDecStmt:
				if throughObject(c.info, n.X, recvObj) {
					writes = true
				}
			}
			return !writes
		})
		if writes {
			c.mutators[fn] = true
		}
	}
}

// throughObject reports whether expr is a store target that writes through
// obj's backing: at least one index or pointer dereference above a path
// rooted at obj.
func throughObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	deref := false
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			expr, deref = x.X, true
		case *ast.StarExpr:
			expr, deref = x.X, true
		case *ast.SelectorExpr:
			expr = x.X
		case *ast.Ident:
			return deref && info.Uses[x] == obj
		default:
			return false
		}
	}
}

// A storeSite is one candidate write through an annotated field.
type storeSite struct {
	node ast.Node  // located in the CFG
	pos  token.Pos // reported position
	fact *Fact
	root types.Object // leftmost base object, for exemptions
	verb string
}

// fieldPath resolves expr as a path rooted at a cowshared field. When
// needDeref is set, at least one index/dereference/slice step must sit
// above the field (a plain `x.F = v` only replaces the header).
func (c *checker) fieldPath(expr ast.Expr, needDeref bool) (*Fact, types.Object, bool) {
	deref := false
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			expr, deref = x.X, true
		case *ast.StarExpr:
			expr, deref = x.X, true
		case *ast.SliceExpr:
			// Slicing narrows a view; as a copy destination it still
			// writes the shared backing.
			expr, deref = x.X, true
		case *ast.SelectorExpr:
			if fact, ok := c.fact(c.info.Uses[x.Sel]); ok && (deref || !needDeref) {
				return fact, rootObject(c.info, x.X), true
			}
			expr = x.X
		case *ast.Ident:
			if fact, ok := c.fact(c.info.Uses[x]); ok && (deref || !needDeref) {
				// A field made visible without selection (method body
				// shorthand does not exist in Go, but composite-literal
				// keys and labels land here harmlessly).
				return fact, nil, true
			}
			return nil, nil, false
		default:
			return nil, nil, false
		}
	}
}

func rootObject(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.SliceExpr:
			expr = x.X
		case *ast.SelectorExpr:
			expr = x.X
		case *ast.Ident:
			return info.Uses[x]
		default:
			return nil
		}
	}
}

// appendOverField reports whether rhs is append(f, ...) or
// append(f[:n], ...) over the same annotated field object.
func (c *checker) appendOverField(rhs ast.Expr, fieldObj types.Object) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := c.info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	arg := ast.Unparen(call.Args[0])
	if sl, ok := arg.(*ast.SliceExpr); ok {
		arg = sl.X
	}
	return analysis.ExprObject(c.info, arg) == fieldObj
}

// checkFunc finds the candidate stores of one function and reports those
// not dominated by a privatizer call.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	fn, _ := c.info.Defs[fd.Name].(*types.Func)
	var sites []storeSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if fact, root, ok := c.fieldPath(lhs, true); ok {
					sites = append(sites, storeSite{n, lhs.Pos(), fact, root, "store through"})
					continue
				}
				// x.F = append(x.F, ...): same backing when capacity
				// allows, so the reassignment idiom is still a write.
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || len(n.Lhs) != len(n.Rhs) {
					continue
				}
				fieldObj := c.info.Uses[sel.Sel]
				fact, ok := c.fact(fieldObj)
				if !ok {
					continue
				}
				if c.appendOverField(n.Rhs[i], fieldObj) {
					sites = append(sites, storeSite{n, lhs.Pos(), fact, rootObject(c.info, sel.X), "append over"})
				}
			}
		case *ast.IncDecStmt:
			if fact, root, ok := c.fieldPath(n.X, true); ok {
				sites = append(sites, storeSite{n, n.X.Pos(), fact, root, "store through"})
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "copy" && len(n.Args) == 2 {
				if _, isBuiltin := c.info.Uses[id].(*types.Builtin); isBuiltin {
					if fact, root, ok := c.fieldPath(n.Args[0], false); ok {
						sites = append(sites, storeSite{n, n.Args[0].Pos(), fact, root, "copy into"})
					}
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if callee := analysis.CalleeFunc(c.info, n); callee != nil && c.mutators[callee] {
					if fact, root, ok := c.fieldPath(sel.X, false); ok {
						sites = append(sites, storeSite{n, n.Pos(), fact, root,
							"mutating call " + callee.Name() + " on"})
					}
				}
			}
		}
		return true
	})
	if len(sites) == 0 {
		return
	}
	fresh := freshLocals(c.info, fd.Body)
	var cfg *dataflow.Graph
	for _, s := range sites {
		if fn != nil && isPrivatizer(fn, s.fact) {
			continue // the privatizer implements the copy
		}
		if s.root != nil && fresh[s.root] {
			continue // function-local fresh object, nothing shared yet
		}
		if cfg == nil {
			cfg = dataflow.New(fd.Body)
		}
		if len(s.fact.Privatizers) > 0 && cfg.GuardedAt(s.node, c.guardPred(s)) {
			continue
		}
		want := "a dominating call to " + strings.Join(s.fact.Names, " or ")
		if len(s.fact.Privatizers) == 0 {
			want = "a written //failtrans:cowok justification (field has no privatizer)"
		}
		c.pass.Reportf(s.pos,
			"%s COW-shared field %s.%s may hit a frozen fork template's backing; needs %s",
			s.verb, s.fact.Struct, s.fact.Field, want)
	}
}

func isPrivatizer(fn *types.Func, fact *Fact) bool {
	for _, p := range fact.Privatizers {
		if p == fn {
			return true
		}
	}
	return false
}

// guardPred builds the dataflow guard predicate: a call to one of the
// fact's privatizers, on the same receiver as the store when both sides
// resolve to simple variables.
func (c *checker) guardPred(s storeSite) func(ast.Node) bool {
	return func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		callee := analysis.CalleeFunc(c.info, call)
		if callee == nil || !isPrivatizer(callee, s.fact) {
			return false
		}
		if sig, _ := callee.Type().(*types.Signature); sig != nil && sig.Recv() == nil {
			return true // package-level privatizer (cloneNode)
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		guardRoot := rootObject(c.info, sel.X)
		if guardRoot == nil || s.root == nil {
			return true
		}
		return guardRoot == s.root
	}
}

// freshLocals collects variables this function binds to provably fresh
// objects — composite literals, their addresses, or new(T) — whose backing
// cannot alias a frozen template. A value copy (`ne := *e`) is NOT fresh:
// it duplicates slice headers and map references, not their backing.
func freshLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	mark := func(name *ast.Ident, rhs ast.Expr) {
		if name == nil || rhs == nil || name.Name == "_" {
			return
		}
		obj := info.Defs[name]
		if obj == nil {
			return
		}
		switch x := ast.Unparen(rhs).(type) {
		case *ast.CompositeLit:
			fresh[obj] = true
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					fresh[obj] = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					fresh[obj] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					mark(id, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, name := range n.Names {
					mark(name, n.Values[i])
				}
			}
		}
		return true
	})
	return fresh
}
