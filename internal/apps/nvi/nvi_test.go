package nvi

import (
	"strings"
	"testing"
	"time"

	"failtrans/internal/dc"
	"failtrans/internal/kernel"
	"failtrans/internal/protocol"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
)

// runSession executes a keystroke script against an editor and returns the
// world and editor.
func runSession(t *testing.T, keys string, contents []string) (*sim.World, *Editor) {
	t.Helper()
	e := New("doc.txt", contents)
	e.ThinkTime = 0 // non-interactive for unit tests
	w := sim.NewWorld(1, e)
	k := kernel.New()
	k.Clock = func() time.Duration { return w.Clock }
	w.OS = k
	w.Procs[0].Ctx().Inputs = Script(keys)
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return w, e
}

func TestInsertText(t *testing.T) {
	_, e := runSession(t, "ihello\x1b", nil)
	if got := e.Contents(); len(got) != 1 || got[0] != "hello" {
		t.Errorf("contents = %q", got)
	}
	if e.Col != 4 {
		t.Errorf("cursor col = %d, want 4 (vi moves left on ESC)", e.Col)
	}
}

func TestInsertNewline(t *testing.T) {
	_, e := runSession(t, "iab\ncd\x1b", nil)
	got := e.Contents()
	if len(got) != 2 || got[0] != "ab" || got[1] != "cd" {
		t.Errorf("contents = %q", got)
	}
	if e.LineCount != 2 {
		t.Errorf("LineCount = %d", e.LineCount)
	}
}

func TestAppendCommand(t *testing.T) {
	_, e := runSession(t, "axyz\x1b", []string{"0"})
	if got := e.Contents()[0]; got != "0xyz" {
		t.Errorf("contents = %q", got)
	}
}

func TestMovementAndDelete(t *testing.T) {
	// Start on "abc"; move right, delete 'b'.
	_, e := runSession(t, "lx", []string{"abc"})
	if got := e.Contents()[0]; got != "ac" {
		t.Errorf("contents = %q", got)
	}
}

func TestDeleteLine(t *testing.T) {
	_, e := runSession(t, "jdd", []string{"one", "two", "three"})
	got := e.Contents()
	if len(got) != 2 || got[0] != "one" || got[1] != "three" {
		t.Errorf("contents = %q", got)
	}
}

func TestDeleteLastLineLeavesEmptyBuffer(t *testing.T) {
	_, e := runSession(t, "dd", []string{"only"})
	got := e.Contents()
	if len(got) != 1 || got[0] != "" {
		t.Errorf("contents = %q", got)
	}
}

func TestOpenLine(t *testing.T) {
	_, e := runSession(t, "onew\x1b", []string{"first"})
	got := e.Contents()
	if len(got) != 2 || got[1] != "new" {
		t.Errorf("contents = %q", got)
	}
}

func TestLineStartEnd(t *testing.T) {
	_, e := runSession(t, "$", []string{"abcde"})
	if e.Col != 5 {
		t.Errorf("$ moved to col %d", e.Col)
	}
	_, e = runSession(t, "$0", []string{"abcde"})
	if e.Col != 0 {
		t.Errorf("0 moved to col %d", e.Col)
	}
}

func TestCursorClamping(t *testing.T) {
	_, e := runSession(t, "kkkhhhh", []string{"ab"})
	if e.Row != 0 || e.Col != 0 {
		t.Errorf("cursor = (%d,%d), want clamped to origin", e.Row, e.Col)
	}
	_, e = runSession(t, "jjjj$llll", []string{"ab", "cdef"})
	if e.Row != 1 || e.Col != 4 {
		t.Errorf("cursor = (%d,%d), want (1,4)", e.Row, e.Col)
	}
}

func TestWriteFile(t *testing.T) {
	w, e := runSession(t, "ihi\x1b:w\n:q\n", nil)
	k := w.OS.(*kernel.Kernel)
	data, ok := k.ReadFile(0, "doc.txt")
	if !ok {
		t.Fatal("doc.txt not written")
	}
	if string(data) != "hi\n" {
		t.Errorf("file = %q", data)
	}
	if e.Phase != phaseDone {
		t.Error("editor should have quit")
	}
	if !w.AllDone() {
		t.Error("world not done")
	}
}

func TestWriteQuit(t *testing.T) {
	w, _ := runSession(t, "iabc\x1b:wq\n", nil)
	k := w.OS.(*kernel.Kernel)
	if data, ok := k.ReadFile(0, "doc.txt"); !ok || string(data) != "abc\n" {
		t.Errorf("file = %q %v", data, ok)
	}
	if !w.AllDone() {
		t.Error("wq should finish the session")
	}
}

func TestRendersEveryKeystroke(t *testing.T) {
	w, _ := runSession(t, "ihi\x1b", nil)
	// 4 keystrokes -> 4 renders.
	if len(w.Outputs[0]) != 4 {
		t.Errorf("renders = %d, want 4: %v", len(w.Outputs[0]), w.Outputs[0])
	}
	if !strings.Contains(w.Outputs[0][2], "hi") {
		t.Errorf("render %q should show the buffer", w.Outputs[0][2])
	}
}

func TestUnknownExCommandIgnored(t *testing.T) {
	w, e := runSession(t, ":zz\nix\x1b", nil)
	if got := e.Contents()[0]; got != "x" {
		t.Errorf("contents = %q", got)
	}
	_ = w
}

func TestStateRoundTrip(t *testing.T) {
	_, e := runSession(t, "ihello\nworld\x1b:w\n", nil)
	img, err := e.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	var e2 Editor
	if err := e2.UnmarshalState(img); err != nil {
		t.Fatal(err)
	}
	if strings.Join(e2.Contents(), "|") != strings.Join(e.Contents(), "|") {
		t.Error("contents diverged after round trip")
	}
	if e2.Row != e.Row || e2.Col != e.Col || len(e2.LineSums) != len(e.LineSums) || e2.Keystroke != e.Keystroke {
		t.Error("cursor/checksum state diverged")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	var e Editor
	if err := e.UnmarshalState([]byte{1, 2, 3}); err == nil {
		t.Error("garbage state must fail to unmarshal")
	}
}

func TestThinkTimePacing(t *testing.T) {
	e := New("doc.txt", nil)
	e.ThinkTime = 100 * time.Millisecond
	w := sim.NewWorld(1, e)
	w.Procs[0].Ctx().Inputs = Script("ihi\x1b")
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Clock < 400*time.Millisecond {
		t.Errorf("clock = %v, want >= 400ms for 4 paced keystrokes", w.Clock)
	}
}

// TestSessionUnderRecoveryWithStops: an editing session survives stop
// failures under CPVS and produces the same final document as the
// failure-free run.
func TestSessionUnderRecoveryWithStops(t *testing.T) {
	script := "ihello world\x1b0x$a!\x1b:w\n:q\n"
	_, clean := runSession(t, script, nil)
	want := strings.Join(clean.Contents(), "|")

	for stopAt := 2; stopAt < 40; stopAt += 5 {
		e := New("doc.txt", nil)
		e.ThinkTime = 0
		w := sim.NewWorld(1, e)
		k := kernel.New()
		k.Clock = func() time.Duration { return w.Clock }
		w.OS = k
		w.Procs[0].Ctx().Inputs = Script(script)
		d := dc.New(w, protocol.CPVS, stablestore.Rio)
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		w.ScheduleStop(0, stopAt)
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if !w.AllDone() {
			t.Errorf("stop@%d: session did not complete", stopAt)
			continue
		}
		if got := strings.Join(e.Contents(), "|"); got != want {
			t.Errorf("stop@%d: document %q, want %q", stopAt, got, want)
		}
	}
}

// TestFaultPointsReachable: arming each fault type leads to a crash (or a
// silently wrong run) rather than hanging.
type oneShotInjector struct {
	kind    sim.FaultKind
	site    string
	afterN  int
	seen    int
	firedAt int
}

func (f *oneShotInjector) At(p *sim.Proc, site string) sim.FaultKind {
	if f.firedAt > 0 || (f.site != "" && site != f.site) {
		return sim.NoFault
	}
	f.seen++
	if f.seen < f.afterN {
		return sim.NoFault
	}
	f.firedAt = p.Steps
	return f.kind
}

func TestFaultKindsCauseCrashOrCorruption(t *testing.T) {
	cases := []struct {
		kind sim.FaultKind
		site string
		n    int
	}{
		{sim.HeapBitFlip, "nvi.key", 3},     // latent until a checksum check
		{sim.DestReg, "nvi.insert", 5},      // column value lands in the row
		{sim.InitFault, "nvi.insert", 2},    // garbage cursor column
		{sim.DeleteBranch, "nvi.key", 3},    // clamp removed, cursor escapes
		{sim.DeleteInstr, "nvi.key", 3},     // shadow count diverges
		{sim.OffByOne, "nvi.insert", 2},     // insert past line end (may be silent)
		{sim.StackBitFlip, "nvi.insert", 2}, // index bits flipped in flight
	}
	crashed := 0
	for _, c := range cases {
		e := New("doc.txt", []string{"some text here", "and more", "third line"})
		e.ThinkTime = 0
		w := sim.NewWorld(9, e)
		k := kernel.New()
		k.Clock = func() time.Duration { return w.Clock }
		w.OS = k
		// A long session with movement, inserts, deletes and two :w
		// commands so the periodic consistency checks run.
		script := strings.Repeat("jjkkll", 6) + "ix\x1b" + strings.Repeat("lix\x1b", 8) + ":w\n" + strings.Repeat("ddo zz\x1b", 2) + strings.Repeat("jkhl", 10) + ":w\n:q\n"
		w.Procs[0].Ctx().Inputs = Script(script)
		w.Faults = &oneShotInjector{kind: c.kind, site: c.site, afterN: c.n}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if w.Procs[0].Crashes > 0 {
			crashed++
		} else {
			t.Logf("%v at %s did not crash (fault absorbed)", c.kind, c.site)
		}
	}
	if crashed < 5 {
		t.Errorf("only %d/7 fault kinds crashed the editor; injection looks inert", crashed)
	}
}

func TestUndoInsert(t *testing.T) {
	_, e := runSession(t, "ihello\x1bu", []string{"base"})
	if got := e.Contents()[0]; got != "base" {
		t.Errorf("after undo = %q, want base", got)
	}
}

func TestUndoRedoToggle(t *testing.T) {
	_, e := runSession(t, "ix\x1buu", []string{"ab"})
	if got := e.Contents()[0]; got != "xab" {
		t.Errorf("u,u should redo: %q", got)
	}
}

func TestUndoDeleteLine(t *testing.T) {
	_, e := runSession(t, "ddu", []string{"one", "two"})
	got := e.Contents()
	if len(got) != 2 || got[0] != "one" {
		t.Errorf("undo of dd = %q", got)
	}
	if e.LineCount != 2 {
		t.Errorf("LineCount after undo = %d", e.LineCount)
	}
}

func TestUndoWithoutHistory(t *testing.T) {
	_, e := runSession(t, "u", []string{"x"})
	if got := e.Contents()[0]; got != "x" {
		t.Errorf("u with no history mutated buffer: %q", got)
	}
}

func TestUndoKeepsChecksumsConsistent(t *testing.T) {
	_, e := runSession(t, "ihello\x1bddu", []string{"a", "b"})
	if err := e.CheckConsistency(); err != nil {
		t.Errorf("consistency after undo: %v", err)
	}
}

func TestDeleteToEndOfLine(t *testing.T) {
	_, e := runSession(t, "llD", []string{"abcdef"})
	if got := e.Contents()[0]; got != "ab" {
		t.Errorf("D = %q, want ab", got)
	}
}

func TestWordMotion(t *testing.T) {
	_, e := runSession(t, "w", []string{"foo bar baz"})
	if e.Col != 4 {
		t.Errorf("w moved to col %d, want 4", e.Col)
	}
	_, e = runSession(t, "ww", []string{"foo bar baz"})
	if e.Col != 8 {
		t.Errorf("ww moved to col %d, want 8", e.Col)
	}
	_, e = runSession(t, "wwb", []string{"foo bar baz"})
	if e.Col != 4 {
		t.Errorf("wwb moved to col %d, want 4", e.Col)
	}
	// w past the last word of a line wraps to the next line.
	_, e = runSession(t, "ww", []string{"foo bar", "next"})
	if e.Row != 1 || e.Col != 0 {
		t.Errorf("ww = (%d,%d), want (1,0) after wrapping", e.Row, e.Col)
	}
}

func TestUndoStateSurvivesCheckpointRoundTrip(t *testing.T) {
	_, e := runSession(t, "ix\x1b", []string{"ab"})
	img, err := e.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	var e2 Editor
	if err := e2.UnmarshalState(img); err != nil {
		t.Fatal(err)
	}
	if !e2.UndoValid || len(e2.UndoLines) != len(e.UndoLines) {
		t.Error("undo snapshot lost in round trip")
	}
}

func TestEssentialStateRoundTrip(t *testing.T) {
	_, e := runSession(t, "ihello\x1bdd", []string{"a", "b"})
	img, err := e.MarshalEssential()
	if err != nil {
		t.Fatal(err)
	}
	var e2 Editor
	if err := e2.UnmarshalEssential(img); err != nil {
		t.Fatal(err)
	}
	if strings.Join(e2.Contents(), "|") != strings.Join(e.Contents(), "|") {
		t.Error("document diverged through essential round trip")
	}
	if err := e2.CheckConsistency(); err != nil {
		t.Errorf("recomputed derived state inconsistent: %v", err)
	}
	if e2.UndoValid {
		t.Error("undo history is derived: must be cleared")
	}
	// Essential images are smaller than full ones.
	full, _ := e.MarshalState()
	if len(img) >= len(full) {
		t.Errorf("essential %dB >= full %dB", len(img), len(full))
	}
}

// TestEssentialOnlyRecoversFromDerivedCorruption is the §2.6 experiment:
// with full-state commits, corrupt derived state is committed and recovery
// crash-loops on it; with essential-only commits the derived state is
// recomputed at rollback and the run completes.
func TestEssentialOnlyRecoversFromDerivedCorruption(t *testing.T) {
	run := func(essentialOnly bool) (*sim.World, *dc.DC) {
		e := New("doc.txt", []string{"alpha", "beta", "gamma"})
		e.ThinkTime = 0
		e.CheckEvery = 10
		w := sim.NewWorld(7, e)
		k := kernel.New()
		k.Clock = func() time.Duration { return w.Clock }
		w.OS = k
		w.Procs[0].Ctx().Inputs = Script(strings.Repeat("jlkh", 20) + ":wq\n")
		d := dc.New(w, protocol.CPVS, stablestore.Rio)
		d.EssentialOnly = essentialOnly
		crashes := 0
		d.RecoveryHook = func(p *sim.Proc, reason string) {
			crashes++
			if crashes > 3 {
				d.DisableRecovery = true
			}
		}
		if err := d.Attach(); err != nil {
			t.Fatal(err)
		}
		// Poison a derived checksum after a few keystrokes, via a
		// wrapper injector that mutates the editor directly.
		poisoned := false
		w.Faults = faultFunc(func(p *sim.Proc, site string) sim.FaultKind {
			if !poisoned && site == "nvi.key" && e.Keystroke == 5 {
				poisoned = true
				e.LineSums[1] ^= 0xdeadbeef
			}
			return sim.NoFault
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return w, d
	}
	// Full commits: the poisoned checksum is committed; every recovery
	// restores it and the next periodic check crashes again.
	wFull, _ := run(false)
	if wFull.AllDone() {
		t.Error("full-state commits should crash-loop on committed derived corruption")
	}
	// Essential commits: rollback recomputes the checksums; done.
	wEss, d := run(true)
	if !wEss.AllDone() {
		t.Error("essential-only commits should recover (derived state recomputed)")
	}
	if d.Stats.Recoveries == 0 {
		t.Error("the corruption should still have caused one crash")
	}
}

// faultFunc adapts a function to sim.FaultInjector.
type faultFunc func(p *sim.Proc, site string) sim.FaultKind

func (f faultFunc) At(p *sim.Proc, site string) sim.FaultKind { return f(p, site) }

func TestSubstituteCurrentLine(t *testing.T) {
	_, e := runSession(t, ":s/brown/red/\n", []string{"the brown fox", "brown again"})
	if got := e.Contents()[0]; got != "the red fox" {
		t.Errorf("line 0 = %q", got)
	}
	if got := e.Contents()[1]; got != "brown again" {
		t.Errorf("line 1 must be untouched: %q", got)
	}
	if e.LastSubst != "1 substitutions" {
		t.Errorf("LastSubst = %q", e.LastSubst)
	}
}

func TestSubstituteWholeBuffer(t *testing.T) {
	_, e := runSession(t, ":%s/a/X/\n", []string{"abc", "cba", "zzz"})
	got := e.Contents()
	if got[0] != "Xbc" || got[1] != "cbX" || got[2] != "zzz" {
		t.Errorf("contents = %q", got)
	}
	if e.LastSubst != "2 substitutions" {
		t.Errorf("LastSubst = %q", e.LastSubst)
	}
	// Checksums stay consistent.
	if err := e.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestSubstituteUndo(t *testing.T) {
	_, e := runSession(t, ":%s/x/y/\nu", []string{"xxx", "axb"})
	got := e.Contents()
	if got[0] != "xxx" || got[1] != "axb" {
		t.Errorf("undo of substitute = %q", got)
	}
}

func TestSubstituteMalformed(t *testing.T) {
	_, e := runSession(t, ":s/\n:s//y/\n", []string{"keep"})
	if e.Contents()[0] != "keep" {
		t.Error("malformed substitute must not mutate")
	}
}

func TestSigwinchForcesRedraw(t *testing.T) {
	e := New("doc.txt", []string{"content"})
	e.ThinkTime = time.Millisecond
	w := sim.NewWorld(1, e)
	k := kernel.New()
	k.Clock = func() time.Duration { return w.Clock }
	w.OS = k
	w.Procs[0].Ctx().Inputs = Script("jjj")
	w.DeliverSignal(0, "SIGWINCH", 1500*time.Microsecond)
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// 3 keystroke renders + 1 signal-forced redraw.
	if got := len(w.Outputs[0]); got != 4 {
		t.Errorf("renders = %d, want 4: %v", got, w.Outputs[0])
	}
}
