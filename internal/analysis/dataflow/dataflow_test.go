package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// run parses one function body, builds its CFG, and asks whether the
// unique statement assigning to `target` is guarded by a call to guard().
// The snippets declare target/guard/cond/etc. as package-level names so
// they parse without a type checker.
func run(t *testing.T, body string) bool {
	t.Helper()
	src := `package p

var target, i int
var cond, other bool
var ch chan int
var xs []int
var v any

func guard() int { return 0 }
func work()      {}

func f() {
` + body + `
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "snippet.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	var fn *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fn = fd
		}
	}
	var store ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "target" {
					store = as
				}
			}
		}
		return true
	})
	if store == nil {
		t.Fatalf("no `target = ...` statement in:\n%s", body)
	}
	g := New(fn.Body)
	return g.GuardedAt(store, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "guard"
	})
}

func TestGuardedAt(t *testing.T) {
	cases := []struct {
		name string
		body string
		want bool
	}{
		{"straight-line", `guard(); target = 1`, true},
		{"no guard", `work(); target = 1`, false},
		{"guard after store", `target = 1; guard()`, false},
		{"same statement", `target = guard()`, true},
		{"then-branch only", `if cond { guard() }; target = 1`, false},
		{"both branches", `if cond { guard() } else { guard() }; target = 1`, true},
		{"guard in condition", `if guard() > 0 { work() }; target = 1`, true},
		{"guarded then-branch store", `if cond { guard(); target = 1 }`, true},
		{"else returns", `if cond { guard() } else { return }; target = 1`, true},
		{"then returns unguarded else", `if cond { return }; guard(); target = 1`, true},
		{"guard before loop", `guard(); for i = 0; cond; i++ { target = 1 }`, true},
		{"guard after store in loop", `for cond { target = 1; guard() }`, false},
		{"guard each iteration", `for cond { guard(); target = 1 }`, true},
		{"break skips guard", `for { if cond { break }; guard() }; target = 1`, false},
		{"infinite loop guards exit", `for { guard(); if cond { break } }; target = 1`, true},
		{"continue re-checks", `for cond { if other { continue }; guard() }; target = 1`, false},
		{"range body", `guard(); for i = range xs { target = 1 }`, true},
		{"range unguarded", `for i = range xs { target = 1 }`, false},
		{"switch all cases", "switch i {\ncase 0:\n\tguard()\ndefault:\n\tguard()\n}\ntarget = 1", true},
		{"switch missing default", `switch i { case 0: guard() }; target = 1`, false},
		{"switch default missing guard", "switch i {\ncase 0:\n\tguard()\ndefault:\n\twork()\n}\ntarget = 1", false},
		// Direct dispatch to case 1 bypasses case 0's guard, so the
		// fallthrough path alone must not sanction the store.
		{"switch fallthrough is not the only entry", "switch i {\ncase 0:\n\tguard()\n\tfallthrough\ncase 1:\n\ttarget = 1\n}", false},
		{"guard in switch tag", `switch guard() { case 0: target = 1 }`, true},
		{"switch fallthrough unguarded entry", "switch i {\ncase 0:\n\tfallthrough\ncase 1:\n\tguard()\ndefault:\n\twork()\n}\ntarget = 1", false},
		{"type switch guarded arm", `switch v.(type) { case int: guard(); target = 1 }`, true},
		{"select both comms", "select {\ncase <-ch:\n\tguard()\ncase ch <- 1:\n\tguard()\n}\ntarget = 1", true},
		{"select one comm", "select {\ncase <-ch:\n\tguard()\ncase ch <- 1:\n\twork()\n}\ntarget = 1", false},
		{"deferred guard does not count", `defer guard(); target = 1`, false},
		{"go guard does not count", `go guard(); target = 1`, false},
		{"guard in closure does not count", `_ = func() { guard() }; target = 1`, false},
		{"store in closure after guard", `guard(); _ = func() { target = 1 }`, true},
		{"panic terminates path", `if cond { panic("x") }; guard(); target = 1`, true},
		{"panic branch not a guard", `if cond { panic("x") }; target = 1`, false},
		{"goto skips guard", `if cond { goto done }; guard(); done: target = 1`, false},
		{"labeled break", `outer: for { for { guard(); break outer } }; target = 1`, true},
		{"labeled break skips guard", `outer: for { for { if cond { break outer }; guard() } }; target = 1`, false},
		{"unreachable store", `return; target = 1`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(t, tc.body); got != tc.want {
				t.Errorf("GuardedAt = %v, want %v for:\n%s", got, tc.want, tc.body)
			}
		})
	}
}
