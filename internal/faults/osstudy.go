package faults

import (
	"fmt"
	"sync"
	"time"

	"failtrans/internal/campaign"
	"failtrans/internal/dc"
	"failtrans/internal/kernel"
	"failtrans/internal/obs/ledger"
	"failtrans/internal/sim"
	"failtrans/internal/stablestore"
)

// osFaultWindow maps each kernel fault type to the latency between fault
// activation inside the kernel and the eventual kernel panic — the window
// during which buggy kernel execution can propagate into application
// state. The durations follow each bug class's nature: an uninitialized
// pointer or corrupted stack usually traps the kernel almost immediately
// (a stop failure), while a flipped heap bit or a deleted branch can let
// the kernel limp along serving corrupted results.
var osFaultWindow = map[sim.FaultKind]time.Duration{
	sim.StackBitFlip: 200 * time.Microsecond,
	sim.HeapBitFlip:  3 * time.Millisecond,
	sim.DestReg:      1 * time.Millisecond,
	sim.InitFault:    500 * time.Microsecond,
	sim.DeleteBranch: 5 * time.Millisecond,
	sim.DeleteInstr:  2500 * time.Microsecond,
	sim.OffByOne:     1500 * time.Microsecond,
}

// scribbleProbability is the chance that one buggy kernel execution (one
// corrupted syscall) also scribbles on the application's memory.
const scribbleProbability = 0.01

// OSTypeResult aggregates one kernel fault type's runs.
type OSTypeResult struct {
	Kind    sim.FaultKind
	Runs    int
	Crashes int
	// FailedRecoveries counts crashes the application could not recover
	// from (Table 2's metric).
	FailedRecoveries int
	// Propagations counts faults that corrupted application-visible
	// state before the kernel panicked.
	Propagations int
}

// FailurePct is the Table 2 cell.
func (t OSTypeResult) FailurePct() float64 {
	if t.Crashes == 0 {
		return 0
	}
	return 100 * float64(t.FailedRecoveries) / float64(t.Crashes)
}

// OSStudy is the Table 2 experiment: inject faults into the running kernel
// and measure how often the application fails to recover.
type OSStudy struct {
	*AppStudy
	cleanOnce sync.Once
	cleanDur  time.Duration
	cleanErr  error
}

// NewOSStudy returns the paper's configuration for the given app.
func NewOSStudy(app string) *OSStudy {
	s := NewAppStudy(app)
	return &OSStudy{AppStudy: s}
}

// memoryScribble arms a one-shot corruption of application memory while
// the kernel fault window is open — a buggy kernel writing through a wild
// pointer into user pages. It fires at the application's next fault site.
type memoryScribble struct {
	armed bool
	// fired marks the scribble explicitly: the step at which it lands can
	// legitimately be 0, so a recorded step cannot double as the flag.
	fired bool
}

//failtrans:hotpath
func (m *memoryScribble) At(p *sim.Proc, site string) sim.FaultKind {
	if !m.armed || m.fired {
		return sim.NoFault
	}
	m.fired = true
	return sim.HeapBitFlip
}

// armOSVeto installs the study's commit-veto policy on one OS-study run's
// DC. Table 2 records carry only a commit count (no positions), so its
// mined machines place every commit before the activation; the runtime
// tracker mirrors that approximation: before injection the run sits at
// CommitStateKey(n) for n commits so far, after injection at
// ActStateKey(n, kind, 0). Counts come from d.Stats, which both the
// from-scratch and the forked path carry (fillOSRecord uses the same
// source), keeping the veto mode-invariant.
func (o *OSStudy) armOSVeto(d *dc.DC, kind sim.FaultKind, injected *bool) {
	if o.Veto == nil {
		return
	}
	d.CommitVeto = func(p *sim.Proc, label string) bool {
		n := d.Stats.TotalCheckpoints()
		if !*injected {
			return o.Veto.CommitUnsafe(ledger.CommitStateKey(n))
		}
		return o.Veto.CommitUnsafe(ledger.ActStateKey(n, kind.String(), 0))
	}
}

// fillOSRecord renders one finished OS-study run into its forensic record.
// The kernel study measures recovery outcomes, not event positions, so the
// record carries the commit count (forked DC stats include the template's
// prefix, keeping it mode-invariant) but no commit positions, and no
// activation/crash step marks.
func (o *OSStudy) fillOSRecord(rec *ledger.Record, kind sim.FaultKind, w *sim.World, d *dc.DC,
	injectAt time.Duration, injSteps int, injected, crashed, recovered, propagated bool) {
	if rec == nil {
		return
	}
	rec.Study = "table2"
	rec.App = o.App
	rec.Protocol = o.Policy.Name
	rec.Medium = stablestore.Rio.Name
	rec.Kind = kind.String()
	rec.Seed = o.Seed
	rec.FireAt = int64(injectAt / time.Microsecond)
	p := w.Procs[0]
	rec.Steps = p.Steps
	rec.WorldSteps = w.StepCount()
	rec.VClockUS = int64(w.Clock / time.Microsecond)
	rec.CommitN = d.Stats.TotalCheckpoints()
	rec.SaveWork = propagated
	if o.Veto != nil {
		rec.VetoActive = true
		rec.VetoN = d.Stats.CommitsVetoed
		rec.VetoSaveWorkN = d.Stats.VetoedSaveWork
	}
	switch {
	case !injected:
		rec.Outcome = ledger.Inert
	case !crashed:
		rec.Outcome = ledger.Completed
	default:
		rec.Outcome = ledger.Crashed
		rec.LoseWork = !recovered
		rec.Recovered = recovered
	}
	if injected {
		rec.PrefixSteps = injSteps
	}
}

// RunOne injects one kernel fault at a time drawn from injSeed and reports
// whether the application crashed and whether it recovered end-to-end.
func (o *OSStudy) RunOne(kind sim.FaultKind, injSeed int64) (crashed, recovered, propagated bool, err error) {
	return o.runOne(kind, injSeed, nil)
}

// runOne is RunOne with an optional forensic record to fill.
func (o *OSStudy) runOne(kind sim.FaultKind, injSeed int64, rec *ledger.Record) (crashed, recovered, propagated bool, err error) {
	w, err := o.buildWorld(o.Seed)
	if err != nil {
		return false, false, false, err
	}
	w.RecordTrace = false
	k := w.OS.(*kernel.Kernel)
	scribble := &memoryScribble{}
	w.Faults = scribble
	// Each buggy kernel execution serving a syscall has a small chance of
	// writing through a wild pointer into user pages; the application's
	// exposure is therefore proportional to its syscall rate within the
	// fault window — the paper's explanation for nvi propagating 4x more
	// often than postgres.
	propRng := newSplitmix(injSeed ^ 0x2545f491)
	k.OnCorrupt = func(pid int) {
		if propRng.Float64() < scribbleProbability {
			scribble.armed = true
		}
	}

	d := dc.New(w, o.Policy, stablestore.Rio)
	crashes := 0
	d.RecoveryHook = func(p *sim.Proc, reason string) {
		crashes++
		if crashes > 3 {
			d.DisableRecovery = true // crash-looping on committed corruption
		}
	}
	injected := false
	o.armOSVeto(d, kind, &injected)
	if err := d.Attach(); err != nil {
		return false, false, false, err
	}

	// Estimate run length, then inject at a random fraction of it.
	cleanDur, err := o.cleanDuration()
	if err != nil {
		return false, false, false, err
	}
	r := newSplitmix(injSeed)
	injectAt := time.Duration(float64(cleanDur) * (0.05 + 0.9*r.Float64()))
	window := osFaultWindow[kind]
	injSteps := -1
	for {
		more, err := w.Step()
		if err != nil {
			return false, false, false, err
		}
		if !more {
			break
		}
		if !injected && w.Clock >= injectAt {
			injected = true
			injSteps = w.StepCount()
			k.InjectFault(0, window)
			o.noteOSReplay(w.StepCount())
		}
	}
	propagated = k.FaultCorrupted(0)
	if injected && crashes > 0 {
		crashed = true
		recovered = w.AllDone()
		propagated = propagated || scribble.fired
	}
	o.fillOSRecord(rec, kind, w, d, injectAt, injSteps, injected, crashed, recovered, propagated)
	return crashed, recovered, propagated, nil
}

// cleanDuration measures the fault-free run's virtual duration, once. A
// build or run failure is propagated instead of silently substituting a
// placeholder duration (which would skew every injection point and thus
// FailurePct). sync.Once makes the cache safe for parallel RunOne calls.
func (o *OSStudy) cleanDuration() (time.Duration, error) {
	o.cleanOnce.Do(func() {
		w, err := o.buildWorld(o.Seed)
		if err != nil {
			o.cleanErr = fmt.Errorf("faults: clean-duration build: %w", err)
			return
		}
		w.RecordTrace = false
		if err := w.Run(); err != nil {
			o.cleanErr = fmt.Errorf("faults: clean-duration run: %w", err)
			return
		}
		o.cleanDur = w.Clock
	})
	return o.cleanDur, o.cleanErr
}

// Run executes the OS study for every fault type, fanning injection runs
// out over o.Parallel workers with the same ordered-acceptance guarantee
// as AppStudy.Run. With Snapshots set, one template run's clock-keyed
// prefix-snapshot cache serves every injection run of every fault type
// (the clean prefix is fault-type-independent).
func (o *OSStudy) Run() ([]OSTypeResult, error) {
	// Measure the clean duration before spawning workers so the first
	// parallel batch doesn't serialize behind the sync.Once anyway.
	if _, err := o.cleanDuration(); err != nil {
		return nil, err
	}
	var cache *prefixCache
	if o.Snapshots {
		var err error
		if cache, err = o.cachedPrefix("table2", o.buildOSPrefixCache); err != nil {
			return nil, err
		}
	}
	var out []OSTypeResult
	for _, kind := range AppFaultTypes {
		kind := kind
		tr := OSTypeResult{Kind: kind}
		type osRun struct {
			crashed, recovered, propagated bool
			rec                            *ledger.Record
		}
		err := campaign.Run(o.campaignConfig("table2/"+o.App+"/"+kind.String()), o.MaxRunsPerType,
			func(run int) (osRun, error) {
				injSeed := o.Seed*77777 + int64(run)
				var rec *ledger.Record
				if o.records() {
					rec = ledger.Get()
				}
				if cache != nil {
					crashed, recovered, propagated, err := o.runOneSnap(kind, injSeed, cache, rec)
					return osRun{crashed, recovered, propagated, rec}, err
				}
				crashed, recovered, propagated, err := o.runOne(kind, injSeed, rec)
				return osRun{crashed, recovered, propagated, rec}, err
			},
			func(run int, r osRun) bool {
				o.acceptLedger(run, r.rec)
				tr.Runs++
				if r.propagated {
					tr.Propagations++
				}
				if r.crashed {
					tr.Crashes++
					if !r.recovered {
						tr.FailedRecoveries++
					}
				}
				return tr.Crashes < o.CrashTarget
			})
		if err != nil {
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}
