package bench

import (
	"fmt"
	"io"
	"time"

	"failtrans/internal/faults"
	"failtrans/internal/obs"
	"failtrans/internal/obs/ledger"
	"failtrans/internal/protocol"
	"failtrans/internal/statemachine"
)

// wallClock supplies wall-clock nanoseconds to the studies' fork-latency
// histogram. The studies live in the deterministic core and cannot call
// time.Now themselves; this package sits outside it and injects the clock.
func wallClock() int64 { return time.Now().UnixNano() }

// Table1Result holds the Table 1 reproduction for both applications.
type Table1Result struct {
	Nvi      []faults.TypeResult
	Postgres []faults.TypeResult
}

// Table1 runs the application fault-injection study. crashTarget ~50
// reproduces the paper; smaller values run faster. workers fans injection
// runs out over that many goroutines (0 or 1 = serial) with results
// byte-identical to the serial loop; snapshots serves injection runs from a
// prefix-snapshot cache (also byte-identical, much faster); cow freezes the
// cached templates and forks them copy-on-write (byte-identical again — the
// CI study diffs cow on/off); campObs, if non-nil, collects per-worker
// campaign counters; lw, if non-nil, receives one forensic ledger record per
// run (byte-identical across workers, snapshots and cow — the record holds
// only logical coordinates); veto, if non-empty, arms each app's study with
// its matching mined commit-veto policy (key "table1/<app>/<protocol>";
// apps without a matching policy run veto-free).
func Table1(crashTarget, workers int, snapshots, cow bool, campObs *obs.CampaignMetrics, lw *ledger.Writer, veto []*statemachine.VetoPolicy) (*Table1Result, error) {
	out := &Table1Result{}
	for _, app := range []string{"nvi", "postgres"} {
		s := faults.NewAppStudy(app)
		s.CrashTarget = crashTarget
		s.MaxRunsPerType = crashTarget * 12
		s.Parallel = workers
		s.Snapshots = snapshots
		s.COW = cow
		s.WallClock = wallClock
		s.CampaignObs = campObs
		s.Ledger = lw
		s.Veto = statemachine.FindPolicy(veto, "table1/"+app+"/"+s.Policy.Name)
		rs, err := s.Run()
		if err != nil {
			return nil, err
		}
		if app == "nvi" {
			out.Nvi = rs
		} else {
			out.Postgres = rs
		}
	}
	return out, nil
}

// avgViolationPct averages the per-type violation percentages (as the
// paper's "Average" row does).
func avgViolationPct(rs []faults.TypeResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rs {
		sum += r.ViolationPct()
	}
	return sum / float64(len(rs))
}

// Print renders Table 1 plus the paper's §4.1 composition with the
// Bohrbug/Heisenbug split from Chandra & Chen (5–15% of bugs are
// Heisenbugs).
func (t *Table1Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Table 1: fraction of application faults that violate Lose-work\n")
	fmt.Fprintf(w, "%-20s %14s %14s\n", "Fault Type", "nvi", "postgres")
	for i := range t.Nvi {
		fmt.Fprintf(w, "%-20s %13.0f%% %13.0f%%\n",
			t.Nvi[i].Kind, t.Nvi[i].ViolationPct(), t.Postgres[i].ViolationPct())
	}
	nv, pg := avgViolationPct(t.Nvi), avgViolationPct(t.Postgres)
	fmt.Fprintf(w, "%-20s %13.0f%% %13.0f%%\n", "Average", nv, pg)

	// §4.1 composition: these violation rates apply to Heisenbugs only;
	// Bohrbugs (85-95% of field bugs) violate Lose-work inherently.
	avg := (nv + pg) / 2
	for _, heisen := range []float64{5, 15} {
		upheld := (100 - avg) / 100 * heisen
		fmt.Fprintf(w, "with %2.0f%% Heisenbugs: Lose-work upheld in %.0f%% of crashes (violated in %.0f%%)\n",
			heisen, upheld, 100-upheld)
	}
}

// Table2Result holds the Table 2 reproduction.
type Table2Result struct {
	Nvi      []faults.OSTypeResult
	Postgres []faults.OSTypeResult
}

// Table2 runs the OS fault-injection study; workers, snapshots, cow,
// campObs, lw and veto behave as in Table1 (policy keys "table2/...").
func Table2(crashTarget, workers int, snapshots, cow bool, campObs *obs.CampaignMetrics, lw *ledger.Writer, veto []*statemachine.VetoPolicy) (*Table2Result, error) {
	out := &Table2Result{}
	for _, app := range []string{"nvi", "postgres"} {
		s := faults.NewOSStudy(app)
		s.CrashTarget = crashTarget
		s.MaxRunsPerType = crashTarget * 12
		s.Parallel = workers
		s.Snapshots = snapshots
		s.COW = cow
		s.WallClock = wallClock
		s.CampaignObs = campObs
		s.Ledger = lw
		s.Veto = statemachine.FindPolicy(veto, "table2/"+app+"/"+s.Policy.Name)
		rs, err := s.Run()
		if err != nil {
			return nil, err
		}
		if app == "nvi" {
			out.Nvi = rs
		} else {
			out.Postgres = rs
		}
	}
	return out, nil
}

// Print renders Table 2.
func (t *Table2Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Table 2: percent of OS faults with failed recovery\n")
	fmt.Fprintf(w, "%-20s %14s %14s\n", "Fault Type", "nvi", "postgres")
	avg := func(rs []faults.OSTypeResult) float64 {
		sum := 0.0
		for _, r := range rs {
			sum += r.FailurePct()
		}
		return sum / float64(len(rs))
	}
	for i := range t.Nvi {
		fmt.Fprintf(w, "%-20s %13.0f%% %13.0f%%\n",
			t.Nvi[i].Kind, t.Nvi[i].FailurePct(), t.Postgres[i].FailurePct())
	}
	fmt.Fprintf(w, "%-20s %13.0f%% %13.0f%%\n", "Average", avg(t.Nvi), avg(t.Postgres))
}

// PrintSpace renders the Figure 3 protocol space as an ASCII scatter plot
// plus the catalog.
func PrintSpace(w io.Writer) {
	const width, height = 64, 22
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = make([]byte, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	for i, p := range protocol.Space() {
		x := int(p.SpaceX / 10 * float64(width-14))
		y := height - 2 - int(p.SpaceY/10*float64(height-3))
		row := grid[y]
		row[x] = byte('A' + i)
		// Write the name after the mark, stopping before it would
		// overwrite another protocol's cell.
		for j, ch := range []byte(" " + p.Name) {
			at := x + 1 + j
			if at >= width || row[at] != ' ' {
				break
			}
			row[at] = ch
		}
	}
	fmt.Fprintln(w, "Figure 3: the protocol space")
	fmt.Fprintln(w, "(y: effort to commit only visible events; x: effort to identify/convert non-determinism)")
	for _, row := range grid {
		fmt.Fprintf(w, "|%s\n", string(row))
	}
	fmt.Fprintf(w, "+%s> x\n", string(make([]byte, 0)))
	for _, p := range protocol.Space() {
		fmt.Fprintf(w, "  %-12s (%2.0f,%2.0f)  leaves-ND=%+.0f  %s\n",
			p.Name, p.SpaceX, p.SpaceY, p.LeavesNonDeterminism(), p.Note)
	}
}
