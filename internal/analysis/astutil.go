package analysis

import (
	"go/ast"
	"go/types"
)

// CalleeFunc resolves the statically-known function or method a call
// invokes, or nil for calls through function values, builtins, and type
// conversions. Calls through interface methods resolve to the interface's
// *types.Func (which has no analyzable body).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// ExprObject resolves the object an expression names: the variable of an
// identifier, or the field/method of the final selector component. It
// returns nil for compound expressions (calls, indexes, literals).
func ExprObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// IsErrorType reports whether t is the built-in error interface.
func IsErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj() == types.Universe.Lookup("error")
}
