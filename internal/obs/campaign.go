package obs

import (
	"fmt"
	"io"
)

// CampaignWorkerMetrics is one campaign worker's fixed-slot counter block.
// Each slot is written only by its own worker goroutine while the campaign
// runs and read only after the pool has drained, so plain increments are
// race-free.
type CampaignWorkerMetrics struct {
	// Runs counts the jobs this worker executed, whether their results
	// were later accepted or discarded as speculative overshoot.
	Runs int64
}

// CampaignMetrics accounts a campaign executor's work: how many runs were
// dispatched speculatively, how many were accepted in serial order, and how
// many were overshoot past the early-exit point the equivalent serial loop
// would have stopped at. The per-worker distribution depends on goroutine
// scheduling and is diagnostic only; the accepted totals are deterministic.
type CampaignMetrics struct {
	Workers []CampaignWorkerMetrics

	// Phases counts ordered-acceptance loops executed (one per fault kind
	// in a study, one per application in a Figure 8 sweep).
	Phases int64
	// Dispatched counts runs handed to workers; Accepted counts results
	// consumed in serial run order; Discarded counts speculative overshoot
	// thrown away after an early exit.
	Dispatched int64
	Accepted   int64
	Discarded  int64
	// SerialRuns counts runs executed on the serial (single-worker) path.
	SerialRuns int64
}

// NewCampaignMetrics returns a registry with one preallocated slot per
// worker.
func NewCampaignMetrics(workers int) *CampaignMetrics {
	if workers < 1 {
		workers = 1
	}
	return &CampaignMetrics{Workers: make([]CampaignWorkerMetrics, workers)}
}

// WriteSummary writes a human-readable summary block.
func (c *CampaignMetrics) WriteSummary(w io.Writer) error {
	_, err := fmt.Fprintf(w, "campaign phases=%d dispatched=%d accepted=%d discarded=%d serial=%d\n",
		c.Phases, c.Dispatched, c.Accepted, c.Discarded, c.SerialRuns)
	if err != nil {
		return err
	}
	for i := range c.Workers {
		if _, err := fmt.Fprintf(w, "  worker %d runs=%d\n", i, c.Workers[i].Runs); err != nil {
			return err
		}
	}
	return nil
}
