package statemachine

import (
	"fmt"
	"io"
	"strings"

	"failtrans/internal/event"
)

// WriteDot renders the machine and its dangerous-path coloring as a
// Graphviz digraph: crash states are filled black (as in the paper's
// figures), dangerous events are red, fixed-ND events are dashed, and
// transient-ND events are dotted.
func (c *Coloring) WriteDot(w io.Writer, name string) error {
	m := c.m
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle, fontsize=10];\n")
	for s := 0; s < m.NumStates; s++ {
		attrs := ""
		switch {
		case m.CrashStates[StateID(s)]:
			attrs = ", style=filled, fillcolor=black, fontcolor=white"
		case c.CommitUnsafeAt(StateID(s)):
			attrs = ", style=filled, fillcolor=mistyrose"
		}
		if StateID(s) == m.Start {
			attrs += ", penwidth=2"
		}
		fmt.Fprintf(&b, "  s%d [label=\"%d\"%s];\n", s, s, attrs)
	}
	for i, e := range m.Edges {
		var style []string
		switch e.ND {
		case event.FixedND:
			style = append(style, "style=dashed")
		case event.TransientND:
			style = append(style, "style=dotted")
		}
		if c.Dangerous(EventID(i)) {
			style = append(style, "color=red", "fontcolor=red")
		}
		label := e.Label
		if label == "" {
			label = fmt.Sprintf("e%d", i)
		}
		fmt.Fprintf(&b, "  s%d -> s%d [label=%q", e.From, e.To, label)
		if len(style) > 0 {
			fmt.Fprintf(&b, ", %s", strings.Join(style, ", "))
		}
		b.WriteString("];\n")
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
