// Package store stands in for the stable-storage API: direct use from
// workload code is an effect even though this fixture stub touches
// nothing real.
package store

// Log is a stable-storage handle.
type Log struct{}

// Append persists a record.
func (l *Log) Append(b []byte) error { return nil }
