// Package ftlint assembles the failtrans invariant checkers — detlint,
// hotpathcheck, durability, cowcheck, interceptcheck — with this
// repository's package configuration, for cmd/ftlint and for the
// repo-wide regression test that keeps the tree lint-clean.
package ftlint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"failtrans/internal/analysis"
	"failtrans/internal/analysis/cowcheck"
	"failtrans/internal/analysis/detlint"
	"failtrans/internal/analysis/durability"
	"failtrans/internal/analysis/hotpath"
	"failtrans/internal/analysis/interceptcheck"
)

// DeterministicCore lists the packages whose execution must be a pure
// function of their seeds: the simulator, the recovery layers above it,
// the campaign machinery and its observability — every byte of their
// output is diffed across runs (serial/parallel equivalence, trace
// byte-identity), so detlint bans nondeterminism sources here.
var DeterministicCore = []string{
	"failtrans/internal/sim",
	"failtrans/internal/dc",
	"failtrans/internal/vista",
	"failtrans/internal/event",
	"failtrans/internal/statemachine",
	"failtrans/internal/recovery",
	"failtrans/internal/campaign",
	"failtrans/internal/obs",
	"failtrans/internal/obs/ledger",
	"failtrans/internal/stablestore",
	"failtrans/internal/faults",
}

// DurabilityStrict lists the packages whose every discarded error the
// durability pass reports: the stable-storage layer and the commit APIs
// above it, where a dropped error is the torn-append bug class.
var DurabilityStrict = []string{
	"failtrans/internal/stablestore",
	"failtrans/internal/dc",
	"failtrans/internal/vista",
}

// RecoverableCore lists the packages whose externally-visible effects
// must all flow through the intercepted event alphabet: the paper's
// recovery protocol can only replay what the DC layer logged, so an
// effect that escapes interception here is exactly the "unintercepted
// environment interaction" failure class of §4. interceptcheck treats
// every function in these packages as a workload root. A scratch package
// planted under internal/apps by the CI negative check is picked up
// automatically via the prefix match.
var RecoverableCore = []string{
	"failtrans/internal/apps",
	"failtrans/internal/kernel",
	"failtrans/internal/protocol",
}

// InterceptionBoundary lists the packages that ARE the intercepted event
// alphabet — the DC hooks, the simulated kernel's syscall surface, the
// simulator's send/recv/clock, stable storage, and the observability
// sinks fed from them. Reachability stops here: effects inside a
// boundary package are by definition intercepted.
var InterceptionBoundary = []string{
	"failtrans/internal/dc",
	"failtrans/internal/sim",
	"failtrans/internal/stablestore",
	"failtrans/internal/obs",
	"failtrans/internal/event",
}

// Analyzers returns the ftlint suite. extraDetPkgs extends detlint's
// deterministic core (the CI negative check plants a scratch package and
// passes it here).
func Analyzers(extraDetPkgs ...string) []*analysis.Analyzer {
	det := append(append([]string(nil), DeterministicCore...), extraDetPkgs...)
	return []*analysis.Analyzer{
		detlint.New(det...),
		hotpath.New(),
		durability.New(DurabilityStrict...),
		cowcheck.New(),
		interceptcheck.New(interceptcheck.Config{
			Core:        RecoverableCore,
			Boundary:    InterceptionBoundary,
			StableStore: []string{"failtrans/internal/stablestore"},
		}),
	}
}

// Run lints the module that contains dir with the full suite and returns
// the findings. Patterns default to ./... .
func Run(dir string, patterns []string, extraDetPkgs ...string) (*analysis.Result, error) {
	return RunParallel(dir, patterns, 0, extraDetPkgs...)
}

// RunParallel is Run with an explicit package-loading parallelism cap
// (0 = GOMAXPROCS, 1 = the old serial loader; the CI timing guard
// compares the two).
func RunParallel(dir string, patterns []string, parallel int, extraDetPkgs ...string) (*analysis.Result, error) {
	root, modpath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return analysis.Run(analysis.Config{
		Dir:        root,
		ModulePath: modpath,
		Patterns:   patterns,
		Parallel:   parallel,
	}, Analyzers(extraDetPkgs...))
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modpath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
