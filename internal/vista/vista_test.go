package vista

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	s := NewSegment(1024, 256)
	if err := s.Write(100, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("Read = %q", got)
	}
}

func TestWriteGrows(t *testing.T) {
	s := NewSegment(0, 256)
	if err := s.Write(1000, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if s.Size() < 1003 {
		t.Errorf("Size = %d, want >= 1003", s.Size())
	}
}

func TestWriteNegativeOffset(t *testing.T) {
	s := NewSegment(10, 0)
	if err := s.Write(-1, []byte{1}); err == nil {
		t.Error("negative offset must error")
	}
}

func TestReadOutOfRange(t *testing.T) {
	s := NewSegment(10, 0)
	if _, err := s.Read(5, 10); err == nil {
		t.Error("read past end must error")
	}
	if _, err := s.Read(-1, 2); err == nil {
		t.Error("negative read offset must error")
	}
}

func TestRollbackRestoresCommittedState(t *testing.T) {
	s := NewSegment(512, 256)
	s.Write(0, []byte("committed"))
	s.Commit([]byte("regs1"))
	s.Write(0, []byte("scribbled"))
	s.Write(300, []byte("more"))
	reg := s.Rollback()
	got, _ := s.Read(0, 9)
	if string(got) != "committed" {
		t.Errorf("after rollback = %q", got)
	}
	if string(reg) != "regs1" {
		t.Errorf("registers = %q", reg)
	}
	more, _ := s.Read(300, 4)
	if !bytes.Equal(more, make([]byte, 4)) {
		t.Errorf("uncommitted write survived rollback: %v", more)
	}
}

func TestDirtyPageAccounting(t *testing.T) {
	s := NewSegment(4*256, 256)
	s.Write(0, []byte{1})
	s.Write(10, []byte{2}) // same page
	if s.DirtyPages() != 1 {
		t.Errorf("DirtyPages = %d, want 1", s.DirtyPages())
	}
	s.Write(255, []byte{3, 4}) // straddles pages 0 and 1
	if s.DirtyPages() != 2 {
		t.Errorf("DirtyPages = %d, want 2", s.DirtyPages())
	}
	st := s.Commit(nil)
	if st.Pages != 2 || st.Bytes != 2*256 {
		t.Errorf("Commit stats = %+v", st)
	}
	if s.DirtyPages() != 0 {
		t.Error("commit must clear dirty set")
	}
}

func TestUndoLoggedOncePerPage(t *testing.T) {
	s := NewSegment(256, 256)
	s.Write(0, []byte{1})
	before := s.LoggedBytes
	s.Write(5, []byte{2})
	if s.LoggedBytes != before {
		t.Error("second write to a dirty page must not log again")
	}
}

func TestSetContentsDiffsPages(t *testing.T) {
	s := NewSegment(0, 256)
	img := make([]byte, 1024)
	for i := range img {
		img[i] = byte(i)
	}
	s.SetContents(img)
	s.Commit(nil)

	// Change one byte in page 2 only.
	img2 := append([]byte(nil), img...)
	img2[600] ^= 0xff
	s.SetContents(img2)
	if s.DirtyPages() != 1 {
		t.Errorf("DirtyPages after one-byte change = %d, want 1", s.DirtyPages())
	}
	if !bytes.Equal(s.Contents(), img2) {
		t.Error("contents mismatch after SetContents")
	}
}

func TestSetContentsShrinkZeroesTail(t *testing.T) {
	s := NewSegment(0, 256)
	s.SetContents(bytes.Repeat([]byte{0xaa}, 1000))
	s.Commit(nil)
	s.SetContents([]byte{1, 2, 3})
	got := s.Contents()
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Error("head not written")
	}
	for i := 3; i < len(got); i++ {
		if got[i] != 0 {
			t.Fatalf("stale byte at %d after shrinking SetContents", i)
		}
	}
}

func TestSetContentsIdenticalTouchesNothing(t *testing.T) {
	s := NewSegment(0, 256)
	img := bytes.Repeat([]byte{7}, 512)
	s.SetContents(img)
	s.Commit(nil)
	s.SetContents(img)
	if s.DirtyPages() != 0 {
		t.Errorf("identical SetContents dirtied %d pages", s.DirtyPages())
	}
}

func TestCommitCount(t *testing.T) {
	s := NewSegment(10, 0)
	s.Commit(nil)
	s.Commit(nil)
	if s.CommitCount != 2 {
		t.Errorf("CommitCount = %d", s.CommitCount)
	}
}

func TestDefaultPageSize(t *testing.T) {
	s := NewSegment(10, 0)
	if s.PageSize() != DefaultPageSize {
		t.Errorf("PageSize = %d", s.PageSize())
	}
	if s.PageSize() != 4096 {
		t.Errorf("DefaultPageSize = %d, want 4096", s.PageSize())
	}
}

// TestSegmentMatchesModel drives the segment with random writes, commits
// and rollbacks, comparing against a naive two-copy model.
func TestSegmentMatchesModel(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const size = 2048
		s := NewSegment(size, 128)
		committed := make([]byte, size)
		working := make([]byte, size)
		var regsCommitted, regsWorking []byte
		for i := 0; i < 60; i++ {
			switch r.Intn(4) {
			case 0, 1:
				off := r.Intn(size - 16)
				n := 1 + r.Intn(16)
				data := make([]byte, n)
				r.Read(data)
				if err := s.Write(off, data); err != nil {
					t.Fatal(err)
				}
				copy(working[off:], data)
			case 2:
				regsWorking = []byte{byte(i)}
				s.Commit(regsWorking)
				copy(committed, working)
				regsCommitted = append([]byte(nil), regsWorking...)
			default:
				reg := s.Rollback()
				copy(working, committed)
				if !bytes.Equal(reg, regsCommitted) {
					t.Logf("seed %d: registers diverged", seed)
					return false
				}
			}
			if !bytes.Equal(s.Contents(), working) {
				t.Logf("seed %d: memory diverged at step %d", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
