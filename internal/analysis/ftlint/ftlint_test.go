package ftlint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"failtrans/internal/analysis"
	"failtrans/internal/analysis/ftlint"
)

// TestRepoTreeIsClean is the regression that keeps the repository
// lint-clean: the full ftlint suite over the whole module must report
// nothing. Any new finding either gets fixed or gets a reasoned
// suppression before this test passes again.
func TestRepoTreeIsClean(t *testing.T) {
	res, err := ftlint.Run(".", nil)
	if err != nil {
		t.Fatalf("ftlint.Run: %v", err)
	}
	for _, d := range res.Diags {
		t.Errorf("%s", analysis.FormatDiag(res.Fset, d))
	}
}

// TestPlantedNondetIsCaught is the in-process twin of CI's negative check:
// a module with a time.Now planted in internal/sim must fail the suite.
// It proves the clean run above is not vacuous.
func TestPlantedNondetIsCaught(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "go.mod"), "module failtrans\n\ngo 1.22\n")
	write(t, filepath.Join(dir, "internal", "sim", "clock.go"), `package sim

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
	res, err := ftlint.Run(dir, nil)
	if err != nil {
		t.Fatalf("ftlint.Run: %v", err)
	}
	if len(res.Diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the planted one: %v", len(res.Diags), res.Diags)
	}
	if d := res.Diags[0]; d.Analyzer != "detlint" || !strings.Contains(d.Message, "time.Now") {
		t.Errorf("wrong diagnostic for the plant: %s: %s", d.Analyzer, d.Message)
	}
}

// TestExtraDetPkgExtendsCore mirrors the -detpkg flag: a scratch package
// outside the deterministic core is ignored by default and checked once
// its import path is passed as an extra detlint package.
func TestExtraDetPkgExtendsCore(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "go.mod"), "module failtrans\n\ngo 1.22\n")
	write(t, filepath.Join(dir, "internal", "scratch", "scratch.go"), `package scratch

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
	res, err := ftlint.Run(dir, nil)
	if err != nil {
		t.Fatalf("ftlint.Run: %v", err)
	}
	if len(res.Diags) != 0 {
		t.Fatalf("scratch package flagged without -detpkg: %v", res.Diags)
	}
	res, err = ftlint.Run(dir, nil, "failtrans/internal/scratch")
	if err != nil {
		t.Fatalf("ftlint.Run with extra pkg: %v", err)
	}
	if len(res.Diags) != 1 || !strings.Contains(res.Diags[0].Message, "time.Now") {
		t.Fatalf("extra detlint package not enforced: %v", res.Diags)
	}
}

// TestPlantedCowStoreIsCaught plants the PR-6 bug shape in a temp module:
// a store through a //failtrans:cowshared field with no dominating
// privatizer call must yield a cowcheck finding.
func TestPlantedCowStoreIsCaught(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "go.mod"), "module failtrans\n\ngo 1.22\n")
	write(t, filepath.Join(dir, "internal", "scratch", "scratch.go"), `package scratch

type Buf struct {
	//failtrans:cowshared privatize
	lines [][]byte
	shared bool
}

func (b *Buf) privatize() {
	if b.shared {
		out := make([][]byte, len(b.lines))
		copy(out, b.lines)
		b.lines = out
		b.shared = false
	}
}

func (b *Buf) Bad(i int) { b.lines[i] = nil }

func (b *Buf) Good(i int) {
	b.privatize()
	b.lines[i] = nil
}
`)
	res, err := ftlint.Run(dir, nil)
	if err != nil {
		t.Fatalf("ftlint.Run: %v", err)
	}
	if len(res.Diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the planted one: %v", len(res.Diags), res.Diags)
	}
	if d := res.Diags[0]; d.Analyzer != "cowcheck" || !strings.Contains(d.Message, "Buf.lines") {
		t.Errorf("wrong diagnostic for the plant: %s: %s", d.Analyzer, d.Message)
	}
}

// TestPlantedEffectIsCaught plants an os.WriteFile inside an app workload
// package in a temp module: interceptcheck must report it as bypassing the
// intercepted event alphabet (the ISSUE's acceptance criterion).
func TestPlantedEffectIsCaught(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "go.mod"), "module failtrans\n\ngo 1.22\n")
	write(t, filepath.Join(dir, "internal", "apps", "scratchapp", "app.go"), `package scratchapp

import "os"

func Step() error { return os.WriteFile("out", nil, 0o644) }
`)
	res, err := ftlint.Run(dir, nil)
	if err != nil {
		t.Fatalf("ftlint.Run: %v", err)
	}
	if len(res.Diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the planted one: %v", len(res.Diags), res.Diags)
	}
	if d := res.Diags[0]; d.Analyzer != "interceptcheck" || !strings.Contains(d.Message, "os.WriteFile") {
		t.Errorf("wrong diagnostic for the plant: %s: %s", d.Analyzer, d.Message)
	}
}

// TestSerialAndParallelLoadersAgree runs the suite over the whole module
// with the serial loader and the parallel one: identical diagnostics (both
// empty on a clean tree, and the same package set loaded) prove the
// scheduler changes nothing observable.
func TestSerialAndParallelLoadersAgree(t *testing.T) {
	serial, err := ftlint.RunParallel(".", nil, 1)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	par, err := ftlint.RunParallel(".", nil, 0)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if len(serial.Diags) != len(par.Diags) {
		t.Fatalf("serial found %d diagnostics, parallel %d", len(serial.Diags), len(par.Diags))
	}
	if len(serial.Pkgs) != len(par.Pkgs) {
		t.Fatalf("serial loaded %d packages, parallel %d", len(serial.Pkgs), len(par.Pkgs))
	}
	for i := range serial.Pkgs {
		if serial.Pkgs[i].Path != par.Pkgs[i].Path {
			t.Fatalf("package order diverges at %d: serial %s, parallel %s",
				i, serial.Pkgs[i].Path, par.Pkgs[i].Path)
		}
	}
}

// TestCowAnnotationsPresent pins the //failtrans:cowshared annotations the
// repo relies on: deleting one would silently shrink cowcheck's coverage.
func TestCowAnnotationsPresent(t *testing.T) {
	files := map[string]int{ // file -> minimum number of cowshared annotations
		"../../vista/vista.go":   3, // mem, pageHash, hashValid
		"../../kernel/kernel.go": 2, // node.fs, Kernel.nodes
		"../../dc/dc.go":         2, // msgDeps, ndLog
		"../../apps/nvi/nvi.go":  4, // Lines, LineSums, UndoLines, UndoSums
	}
	for file, min := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Errorf("read %s: %v", file, err)
			continue
		}
		if got := strings.Count(string(data), "//failtrans:cowshared"); got < min {
			t.Errorf("%s: %d //failtrans:cowshared annotations, want at least %d", file, got, min)
		}
	}
}

// TestHotpathRootsAnnotated pins the hot-path annotations the repo relies
// on: deleting one would silently shrink hotpathcheck's coverage to
// nothing, so their presence is asserted here.
func TestHotpathRootsAnnotated(t *testing.T) {
	roots := map[string]int{ // file -> minimum number of hotpath annotations
		"../../vista/vista.go": 3, // (*Segment).Write, SetContents, Commit
		"../../sim/proc.go":    1, // (*Proc).AppendCheckpointImage
		"../../dc/dc.go":       1, // (*DC).diffOne
	}
	for file, min := range roots {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Errorf("read %s: %v", file, err)
			continue
		}
		if got := strings.Count(string(data), "//failtrans:hotpath"); got < min {
			t.Errorf("%s: %d //failtrans:hotpath annotations, want at least %d", file, got, min)
		}
	}
}

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
