package ledger

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrTruncated reports a ledger whose final line is not newline-terminated
// — the signature of a file torn mid-append by a crash. ReadAll returns
// the complete records preceding the tear alongside an error wrapping
// ErrTruncated, so callers can distinguish "torn tail, prefix is good"
// (recoverable: analyze the prefix) from in-line corruption (not).
var ErrTruncated = errors.New("ledger: truncated final record")

// outcomeByName inverts outcomeNames for the reader.
func outcomeByName(s string) (Outcome, bool) {
	for i, n := range outcomeNames {
		if n == s {
			return Outcome(i), true
		}
	}
	return 0, false
}

// fieldCount is the per-version record field count: v2 appends the
// veton|vetosw columns before the commit list.
func fieldCount(version int) int {
	if version >= 2 {
		return 23
	}
	return 21
}

// ReadAll parses a ledger stream. It accepts comment lines (leading '#')
// anywhere, validates the version line (v1 and v2 are accepted; v1
// records read back with zero veto fields), the field count of every
// record, and the commit-list/commit-count consistency.
//
// A stream whose final line lacks its newline — including a tear inside
// the header — yields every record before the tear plus an error wrapping
// ErrTruncated. Lines that are complete but malformed remain hard errors.
func ReadAll(r io.Reader) ([]Record, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	line := 0
	// next returns the following newline-terminated line (sans newline).
	// done distinguishes clean EOF from a torn tail: a non-empty remainder
	// without a newline is the torn-append signature.
	next := func() (text string, done bool, err error) {
		s, err := br.ReadString('\n')
		if err == nil {
			line++
			return strings.TrimSuffix(s, "\n"), false, nil
		}
		if err == io.EOF {
			if s == "" {
				return "", true, nil
			}
			return "", true, fmt.Errorf("ledger: line %d: %w", line+1, ErrTruncated)
		}
		return "", true, fmt.Errorf("ledger: %w", err)
	}
	magic, done, err := next()
	if err != nil {
		return nil, err
	}
	if done {
		return nil, fmt.Errorf("ledger: empty input: %w", ErrTruncated)
	}
	var v int
	if _, err := fmt.Sscanf(magic, "ftledger v%d", &v); err != nil {
		return nil, fmt.Errorf("ledger: bad magic line %q", magic)
	}
	if v < 1 || v > Version {
		return nil, fmt.Errorf("ledger: unsupported version %d (reader speaks v1..v%d)", v, Version)
	}
	var out []Record
	for {
		text, done, err := next()
		if err != nil {
			return out, err
		}
		if done {
			return out, nil
		}
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		rec, err := parseLine(text, v)
		if err != nil {
			return nil, fmt.Errorf("ledger: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
}

// ReadFiles reads and concatenates several ledger files in argument order
// (the multi-shard ftreport input). On error the records parsed so far are
// returned alongside it, so a caller that recognizes errors.Is(err,
// ErrTruncated) can analyze the complete prefix of a torn shard.
func ReadFiles(open func(string) (io.ReadCloser, error), paths []string) ([]Record, error) {
	var out []Record
	for _, p := range paths {
		f, err := open(p)
		if err != nil {
			return out, err
		}
		recs, err := ReadAll(f)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		out = append(out, recs...)
		if err != nil {
			return out, fmt.Errorf("%s: %w", p, err)
		}
	}
	return out, nil
}

func parseLine(text string, version int) (Record, error) {
	var r Record
	f := strings.Split(text, "|")
	if want := fieldCount(version); len(f) != want {
		return r, fmt.Errorf("have %d fields, want %d (v%d)", len(f), want, version)
	}
	ints := func(idx int, dst *int) error {
		v, err := strconv.Atoi(f[idx])
		if err != nil {
			return fmt.Errorf("field %d: %w", idx, err)
		}
		*dst = v
		return nil
	}
	if err := ints(0, &r.Run); err != nil {
		return r, err
	}
	r.Study, r.App, r.Protocol, r.Medium, r.Kind = f[1], f[2], f[3], f[4], f[5]
	seed, err := strconv.ParseInt(f[6], 10, 64)
	if err != nil {
		return r, fmt.Errorf("seed: %w", err)
	}
	r.Seed = seed
	fire, err := strconv.ParseInt(f[7], 10, 64)
	if err != nil {
		return r, fmt.Errorf("fire: %w", err)
	}
	r.FireAt = fire
	out, ok := outcomeByName(f[8])
	if !ok {
		return r, fmt.Errorf("unknown outcome %q", f[8])
	}
	r.Outcome = out
	for _, c := range f[9] {
		switch c {
		case 'L':
			r.LoseWork = true
		case 'S':
			r.SaveWork = true
		case 'R':
			r.Recovered = true
		case 'V':
			r.VetoActive = true
		case '-':
		default:
			return r, fmt.Errorf("unknown flag %q", string(c))
		}
	}
	if err := ints(10, &r.Activation); err != nil {
		return r, err
	}
	if err := ints(11, &r.Crash); err != nil {
		return r, err
	}
	if err := ints(12, &r.Steps); err != nil {
		return r, err
	}
	if err := ints(13, &r.WorldSteps); err != nil {
		return r, err
	}
	if err := ints(14, &r.PrefixSteps); err != nil {
		return r, err
	}
	vclock, err := strconv.ParseInt(f[15], 10, 64)
	if err != nil {
		return r, fmt.Errorf("vclock: %w", err)
	}
	r.VClockUS = vclock
	if err := ints(16, &r.RollbackDepth); err != nil {
		return r, err
	}
	if err := ints(17, &r.CommitN); err != nil {
		return r, err
	}
	if err := ints(18, &r.ViolFirst); err != nil {
		return r, err
	}
	if err := ints(19, &r.ViolN); err != nil {
		return r, err
	}
	commitsField := 20
	if version >= 2 {
		if err := ints(20, &r.VetoN); err != nil {
			return r, err
		}
		if err := ints(21, &r.VetoSaveWorkN); err != nil {
			return r, err
		}
		commitsField = 22
	}
	if f[commitsField] != "-" {
		parts := strings.Split(f[commitsField], ",")
		r.Commits = make([]int, len(parts))
		for i, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil {
				return r, fmt.Errorf("commit %d: %w", i, err)
			}
			r.Commits[i] = v
		}
		if len(r.Commits) != r.CommitN {
			return r, fmt.Errorf("commit list has %d entries but commitn=%d", len(r.Commits), r.CommitN)
		}
	}
	return r, nil
}
